/**
 * @file
 * EstimationSession — the facade over the measure → account → fit
 * path.
 *
 * A session owns the two pieces of long-lived state every driver
 * used to wire by hand: the execution context (thread pool, from
 * UCX_THREADS) and the content-addressed ArtifactCache (gated by
 * UCX_CACHE). Benches, examples, and user code go through one
 * object:
 *
 *     EstimationSession session;
 *     auto built = session.buildShipped();          // measure
 *     auto m = session.measureShipped("fetch");     // account
 *     auto dee1 = session.fit(EstimatorSpec::dee1()); // fit
 *     auto p = session.predict(dee1, m.metrics);    // predict
 *
 * Every computation routed through the session is memoized in the
 * session cache (elaborations, per-pass synthesis artifacts, whole
 * component measurements, fitted estimators). Producers are
 * deterministic, so a cache hit is byte-identical to a recompute at
 * any thread count; disabling the cache (UCX_CACHE=0) only changes
 * how much work is done, never a single output byte.
 */

#ifndef UCX_ENGINE_SESSION_HH
#define UCX_ENGINE_SESSION_HH

#include <string>
#include <utility>
#include <vector>

#include "cache/artifact_cache.hh"
#include "core/dataset.hh"
#include "core/early.hh"
#include "core/estimator.hh"
#include "core/measure.hh"
#include "designs/registry.hh"
#include "exec/context.hh"
#include "lint/lint.hh"
#include "synth/pass.hh"
#include "synth/report.hh"

namespace ucx
{

/**
 * Declarative description of one design-effort estimator: the metric
 * subset plus how its weights are calibrated. The spec (not a
 * fitted object) is what callers pass around, and what the session
 * keys its fit memoization on.
 */
struct EstimatorSpec
{
    std::vector<Metric> metrics;                 ///< Covariates.
    FitMode mode = FitMode::MixedEffects;        ///< Calibration.
    ZeroPolicy zeroPolicy = ZeroPolicy::ClampToOne; ///< Zero rows.

    /** @return The paper's recommended DEE1 (Stmts + FanInLC). */
    static EstimatorSpec dee1(FitMode mode = FitMode::MixedEffects);

    /** @return A single-metric estimator. */
    static EstimatorSpec single(Metric metric,
                                FitMode mode =
                                    FitMode::MixedEffects);

    /** @return "Stmts+FanInLC" style display name. */
    std::string name() const;

    /** @return Canonical cache-key fragment (name|mode|policy). */
    std::string fingerprint() const;
};

/** Session-wide configuration. */
struct SessionConfig
{
    /** Cache on/off (fromEnv: false iff UCX_CACHE=0). */
    bool cacheEnabled = true;

    /** Cache entry capacity (fromEnv: UCX_CACHE_CAPACITY). */
    size_t cacheCapacity = 1024;

    /**
     * Disk-tier directory of the artifact cache (fromEnv:
     * UCX_CACHE_DIR). "" keeps the cache memory-only; set, it
     * persists artifacts across sessions and processes, so a warm
     * restart re-reads rather than recomputes.
     */
    std::string cacheDir;

    /** Synthesis pipeline configuration (library/fabric/power). */
    PassConfig passes;

    /**
     * Lint gating on/off (fromEnv: false iff UCX_LINT=0). When on,
     * measurement and fitting refuse inputs with Error-severity
     * lint findings, naming the rule id in the thrown UcxError.
     */
    bool lintEnabled = true;

    /**
     * Dataflow-analysis lint rules (dfa.*) on/off in session lint
     * runs (fromEnv: false iff UCX_DFA=0). Off leaves only the
     * structural hdl.* rules, matching pre-dfa behavior.
     */
    bool dfaEnabled = true;

    /** @return Configuration honoring the UCX_CACHE,
     *          UCX_CACHE_CAPACITY, UCX_CACHE_DIR, UCX_LINT,
     *          UCX_DFA, and UCX_CONST_FOLD variables. */
    static SessionConfig fromEnv();
};

/** A point effort estimate with its lognormal uncertainty. */
struct Prediction
{
    double median = 0.0; ///< Paper Equation 1.
    double mean = 0.0;   ///< Paper Equation 4.
    double lo90 = 0.0;   ///< Lower 90% confidence bound.
    double hi90 = 0.0;   ///< Upper 90% confidence bound.
};

/** Synthesis detail of one shipped design (synthesis_report). */
struct DesignReport
{
    std::string name;                   ///< Registry key.
    std::string description;            ///< One-line description.
    std::vector<std::string> warnings;  ///< Elaboration warnings.
    SynthReport report;                 ///< Gate/LUT/cone histograms.
    TimingReport fpga;                  ///< FPGA STA.
    TimingReport asic;                  ///< ASIC STA.
};

/**
 * The unified driver for the measure → account → fit → predict
 * path. Cheap to construct; holds the exec pool and the artifact
 * cache. Thread-safe to the same degree as its parts: the cache is
 * fully thread-safe, and the measurement/fit entry points are safe
 * to call from parallelFor bodies (they share only the cache).
 */
class EstimationSession
{
  public:
    /**
     * Create a session.
     *
     * @param config Cache and pipeline configuration.
     * @param ctx    Execution context for parallel loops.
     */
    explicit EstimationSession(
        SessionConfig config = SessionConfig::fromEnv(),
        ExecContext ctx = ExecContext::fromEnv());

    /** @return The session's execution context. */
    const ExecContext &exec() const { return ctx_; }

    /** @return The session's artifact cache. */
    ArtifactCache &cache() { return cache_; }

    /** @return The session configuration. */
    const SessionConfig &config() const { return config_; }

    // ------------------------------------------------ measurement

    /**
     * Measure one component through the full pipeline (paper
     * Section 2.2), memoized in the session cache.
     *
     * @param design The component's µHDL design.
     * @param top    Top module name.
     * @param mode   Accounting mode.
     * @return Metric values and accounting diagnostics.
     */
    ComponentMeasurement measure(
        const Design &design, const std::string &top,
        AccountingMode mode = AccountingMode::WithProcedure);

    /**
     * Measure a shipped design by registry name.
     *
     * @param name Registry key, e.g. "fetch".
     * @param mode Accounting mode.
     * @return Metric values and accounting diagnostics.
     */
    ComponentMeasurement measureShipped(
        const std::string &name,
        AccountingMode mode = AccountingMode::WithProcedure);

    /**
     * Parse, elaborate, and synthesize every shipped design through
     * the session's pool and cache.
     *
     * @return One entry per shipped design, in registry order.
     */
    std::vector<BuiltDesign> buildShipped();

    /**
     * Full synthesis detail of one shipped design (the Synplify-
     * style report).
     *
     * @param name Registry key.
     * @return Histograms, warnings, and both STA results.
     */
    DesignReport synthesisReport(const std::string &name);

    // --------------------------------------------------- datasets

    /**
     * @return The published calibration dataset, measured *with* the
     *         accounting procedure (paper Table 4).
     */
    const Dataset &accountedDataset() const;

    /**
     * @return The Section 5.3 reconstruction measured *without* the
     *         accounting procedure (Figure 6 ablation).
     */
    const Dataset &unaccountedDataset() const;

    // ---------------------------------------------------- fitting

    /**
     * Calibrate an estimator on the accounted dataset. Memoized: a
     * repeated fit of the same spec is a cache hit.
     *
     * @param spec Estimator description.
     * @return The calibrated estimator.
     */
    FittedEstimator fit(const EstimatorSpec &spec);

    /**
     * Calibrate on an arbitrary dataset (cross-validation folds,
     * user data), memoized by dataset content + spec.
     *
     * @param dataset Training components.
     * @param spec    Estimator description.
     * @return The calibrated estimator.
     */
    FittedEstimator fitOn(const Dataset &dataset,
                          const EstimatorSpec &spec);

    /**
     * The Section 5.3 accounting ablation: the same spec calibrated
     * on the unaccounted dataset.
     *
     * @param spec Estimator description.
     * @return The estimator fitted without the accounting procedure.
     */
    FittedEstimator ablate(const EstimatorSpec &spec);

    // ---------------------------------------------------- linting

    /**
     * Lint one design end to end (AST rules, elaboration,
     * structural passes; see lintHdlDesign). Structural-rule
     * artifacts memoize in the session cache.
     *
     * @param design      Parsed design.
     * @param top         Top module to elaborate.
     * @param design_name Name used in diagnostics ("" uses @p top).
     * @return The canonical report.
     */
    LintReport lint(const Design &design, const std::string &top,
                    const std::string &design_name = "");

    /**
     * Lint a shipped design by registry name.
     *
     * @param name Registry key, e.g. "fetch".
     * @return The canonical report.
     */
    LintReport lintShipped(const std::string &name);

    /**
     * Lint every shipped design through the session's pool, plus
     * the accounting rules over the partition they form.
     *
     * @return The merged canonical report (byte-identical at any
     *         thread count).
     */
    LintReport lintAllShipped();

    /**
     * Pre-fit dataset rules (fit.*) plus dataset accounting rules
     * (acct.*) for one (dataset, spec) calibration input.
     *
     * @param dataset      Training components.
     * @param spec         Estimator description.
     * @param dataset_name Name used in diagnostics.
     * @return The canonical report.
     */
    LintReport lintFit(const Dataset &dataset,
                       const EstimatorSpec &spec,
                       const std::string &dataset_name = "dataset");

    // ------------------------------------------------- prediction

    /**
     * Point estimate plus uncertainty for one component.
     *
     * @param estimator A calibrated estimator.
     * @param metrics   The component's measured metric values.
     * @param rho       Productivity of the designing team.
     * @return Median, mean, and the 90% interval.
     */
    Prediction predict(const FittedEstimator &estimator,
                       const MetricValues &metrics,
                       double rho = 1.0) const;

    // ----------------------------------------------------- early

    /**
     * An early estimator (Section 7) wired to the session cache, so
     * its calibration syntheses memoize.
     *
     * @param design     Parameterized component design; must outlive
     *                   the returned estimator.
     * @param top        Top module name.
     * @param param_name Scaled parameter.
     * @return The estimator (not yet calibrated).
     */
    EarlyEstimator earlyEstimator(const Design &design,
                                  const std::string &top,
                                  const std::string &param_name);

  private:
    MeasureOptions measureOptions(AccountingMode mode);

    SessionConfig config_;
    ExecContext ctx_;
    ArtifactCache cache_;
};

} // namespace ucx

#endif // UCX_ENGINE_SESSION_HH
