#include "engine/session.hh"

#include <cstdlib>
#include <cstring>

#include "data/paper_data.hh"
#include "exec/task_graph.hh"
#include "io/artifact_serde.hh"
#include "nlme/mixed_model.hh"
#include "obs/tracelog.hh"
#include "synth/elaborate.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/**
 * Content hash of a dataset: every component's identity, effort,
 * and metric values, in order. Two datasets with the same hash fit
 * to the same estimator, so this is what keys fit memoization.
 */
uint64_t
datasetFingerprint(const Dataset &dataset)
{
    uint64_t h = fnv1a("dataset");
    for (const Component &c : dataset.components()) {
        h = fnv1a(c.project.data(), c.project.size(), h);
        h = fnv1a(c.name.data(), c.name.size(), h);
        h = fnv1aMix(h, c.effort);
        for (double v : c.metrics)
            h = fnv1aMix(h, v);
    }
    return h;
}

/** Cache key of one (dataset, spec) calibration. */
CacheKey
fitKey(const Dataset &dataset, const EstimatorSpec &spec)
{
    CacheKey key("fit");
    key.addHash(datasetFingerprint(dataset));
    key.add(spec.fingerprint());
    // The gradient path changes which optimizer trajectory produced
    // the artifact; the disk tier outlives the process, so the key
    // must distinguish runs with the analytic path toggled off.
    key.add(std::string("grad=") +
            (MixedModelConfig::defaultAnalyticGradient() ? "1" : "0"));
    return key;
}

} // namespace

EstimatorSpec
EstimatorSpec::dee1(FitMode mode)
{
    EstimatorSpec spec;
    spec.metrics = {Metric::Stmts, Metric::FanInLC};
    spec.mode = mode;
    return spec;
}

EstimatorSpec
EstimatorSpec::single(Metric metric, FitMode mode)
{
    EstimatorSpec spec;
    spec.metrics = {metric};
    spec.mode = mode;
    return spec;
}

std::string
EstimatorSpec::name() const
{
    std::string out;
    for (Metric m : metrics)
        out += (out.empty() ? "" : "+") + metricName(m);
    return out;
}

std::string
EstimatorSpec::fingerprint() const
{
    std::string out = name();
    out += mode == FitMode::MixedEffects ? "|mixed" : "|pooled";
    switch (zeroPolicy) {
    case ZeroPolicy::ClampToOne:
        out += "|clamp";
        break;
    case ZeroPolicy::Drop:
        out += "|drop";
        break;
    case ZeroPolicy::Error:
        out += "|error";
        break;
    }
    return out;
}

SessionConfig
SessionConfig::fromEnv()
{
    SessionConfig config;
    config.cacheEnabled = ArtifactCache::enabledFromEnv();
    config.cacheCapacity = ArtifactCache::defaultCapacity();
    config.cacheDir = ArtifactCache::diskDirFromEnv();
    const char *lint = std::getenv("UCX_LINT");
    config.lintEnabled = !(lint && std::strcmp(lint, "0") == 0);
    const char *dfa = std::getenv("UCX_DFA");
    config.dfaEnabled = !(dfa && std::strcmp(dfa, "0") == 0);
    const char *fold = std::getenv("UCX_CONST_FOLD");
    config.passes.constFold =
        fold && std::strcmp(fold, "1") == 0;
    return config;
}

EstimationSession::EstimationSession(SessionConfig config,
                                     ExecContext ctx)
    : config_(config), ctx_(std::move(ctx)),
      cache_(config.cacheCapacity, config.cacheEnabled,
             config.cacheDir)
{
    // The disk tier only persists serde-registered types; publish
    // the codecs up front so the very first computation writes
    // through.
    io::registerArtifactSerdes();
}

MeasureOptions
EstimationSession::measureOptions(AccountingMode mode)
{
    MeasureOptions opts;
    opts.mode = mode;
    opts.cache = &cache_;
    opts.passes = config_.passes;
    opts.exec = &ctx_;
    return opts;
}

ComponentMeasurement
EstimationSession::measure(const Design &design,
                           const std::string &top,
                           AccountingMode mode)
{
    obs::TraceScope trace("engine.measure");
    if (trace.active())
        trace.arg("top", top);
    if (config_.lintEnabled) {
        // Cheap pre-measure gate: AST and RTL-level rules only (the
        // netlist rules need the lowering a comb-loop would break).
        LintRunOptions opts;
        opts.config = config_.passes;
        opts.cache = &cache_;
        opts.netlistRules = false;
        LintReport report = lintHdlDesign(design, top, top, opts);
        recordLintObs(report);
        if (const LintDiagnostic *d =
                report.firstAtLeast(LintSeverity::Error))
            throw UcxError("component '" + top + "': lint [" +
                           d->rule + "] " + d->message);
    }
    return measureComponent(design, top, measureOptions(mode));
}

ComponentMeasurement
EstimationSession::measureShipped(const std::string &name,
                                  AccountingMode mode)
{
    const ShippedDesign &sd = shippedDesign(name);
    Design design = sd.load();
    return measure(design, sd.top, mode);
}

std::vector<BuiltDesign>
EstimationSession::buildShipped()
{
    obs::TraceScope trace("engine.build_shipped");
    return buildAll(ctx_, &cache_, config_.passes);
}

DesignReport
EstimationSession::synthesisReport(const std::string &name)
{
    obs::TraceScope trace("engine.synthesis_report");
    if (trace.active())
        trace.arg("design", name);
    const ShippedDesign &sd = shippedDesign(name);
    DesignReport out;
    out.name = sd.name;
    out.description = sd.description;

    Design design = sd.load();
    std::shared_ptr<const ElabResult> elab =
        elaborateShared(design, sd.top, {}, &cache_);
    out.warnings = elab->warnings;

    PipelineRun run;
    run.cache = &cache_;
    run.base = synthCacheKey(elabCacheKey(design, sd.top, {}),
                             config_.passes);
    PipelineContext pipeline =
        runPasses(elab->rtl, passListFor(config_.passes),
                  config_.passes, run);
    out.report = buildReport(*pipeline.netlist);
    out.fpga = pipeline.timing->fpga;
    out.asic = pipeline.timing->asic;
    return out;
}

const Dataset &
EstimationSession::accountedDataset() const
{
    return paperDataset();
}

const Dataset &
EstimationSession::unaccountedDataset() const
{
    return paperDatasetNoAccounting();
}

FittedEstimator
EstimationSession::fit(const EstimatorSpec &spec)
{
    return fitOn(accountedDataset(), spec);
}

LintReport
EstimationSession::lint(const Design &design,
                        const std::string &top,
                        const std::string &design_name)
{
    LintRunOptions opts;
    opts.config = config_.passes;
    opts.cache = &cache_;
    opts.dfaRules = config_.dfaEnabled;
    LintReport report = lintHdlDesign(
        design, top, design_name.empty() ? top : design_name, opts);
    recordLintObs(report);
    return report;
}

LintReport
EstimationSession::lintShipped(const std::string &name)
{
    const ShippedDesign &sd = shippedDesign(name);
    Design design = sd.load();
    return lint(design, sd.top, sd.name);
}

LintReport
EstimationSession::lintAllShipped()
{
    obs::TraceScope trace("engine.lint_all_shipped");
    const std::vector<ShippedDesign> &designs = shippedDesigns();
    TaskGraph graph(ctx_);
    std::vector<LintReport> reports =
        graph.map(designs.size(), [&](size_t i) {
            const ShippedDesign &sd = designs[i];
            Design design = sd.load();
            LintRunOptions opts;
            opts.config = config_.passes;
            opts.cache = &cache_;
            opts.dfaRules = config_.dfaEnabled;
            return lintHdlDesign(design, sd.top, sd.name, opts);
        });
    LintReport merged;
    for (const LintReport &report : reports)
        merged.merge(report);
    merged.sortCanonical();
    recordLintObs(merged);
    return merged;
}

LintReport
EstimationSession::lintFit(const Dataset &dataset,
                           const EstimatorSpec &spec,
                           const std::string &dataset_name)
{
    LintReport report = lintDatasetAccounting(dataset, dataset_name);
    report.merge(lintFitInputs(dataset, spec.metrics,
                               spec.zeroPolicy, dataset_name));
    report.sortCanonical();
    recordLintObs(report);
    return report;
}

FittedEstimator
EstimationSession::fitOn(const Dataset &dataset,
                         const EstimatorSpec &spec)
{
    obs::TraceScope trace("engine.fit");
    if (trace.active()) {
        trace.arg("spec", spec.name())
            .arg("mode", spec.mode == FitMode::MixedEffects
                             ? "mixed"
                             : "pooled");
    }
    require(!spec.metrics.empty(),
            "estimator spec needs at least one metric");
    if (config_.lintEnabled) {
        LintReport report = lintFit(dataset, spec, "dataset");
        if (const LintDiagnostic *d =
                report.firstAtLeast(LintSeverity::Error))
            throw UcxError("fit '" + spec.name() + "': lint [" +
                           d->rule + "] " + d->message);
    }
    return *cache_.getOrCompute<FittedEstimator>(
        fitKey(dataset, spec), [&] {
            return fitEstimator(dataset, spec.metrics, spec.mode,
                                spec.zeroPolicy, ctx_);
        });
}

FittedEstimator
EstimationSession::ablate(const EstimatorSpec &spec)
{
    return fitOn(unaccountedDataset(), spec);
}

Prediction
EstimationSession::predict(const FittedEstimator &estimator,
                           const MetricValues &metrics,
                           double rho) const
{
    Prediction p;
    p.median = estimator.predictMedian(metrics, rho);
    p.mean = estimator.predictMean(metrics, rho);
    auto [lo, hi] = estimator.confidenceInterval(p.median, 0.90);
    p.lo90 = lo;
    p.hi90 = hi;
    return p;
}

EarlyEstimator
EstimationSession::earlyEstimator(const Design &design,
                                  const std::string &top,
                                  const std::string &param_name)
{
    return EarlyEstimator(design, top, param_name, &cache_);
}

} // namespace ucx
