/**
 * @file
 * ucx::obs — process memory gauges.
 *
 * Reads the process's resident set size (current and peak) from the
 * operating system and publishes it through the metrics registry as
 * the gauges "obs.rss_bytes" and "obs.rss_peak_bytes" (plus Perfetto
 * counter events when tracing is on). On platforms without
 * /proc/self/status the readings are zero and flagged invalid.
 */

#ifndef UCX_OBS_MEMORY_HH
#define UCX_OBS_MEMORY_HH

#include <cstdint>

namespace ucx
{
namespace obs
{

/** Point-in-time process memory reading. */
struct MemoryUsage
{
    uint64_t rssBytes = 0;     ///< Current resident set size.
    uint64_t rssPeakBytes = 0; ///< Peak resident set size (VmHWM).
    bool valid = false;        ///< False when the OS has no reading.
};

/** @return The current process memory usage. */
MemoryUsage readMemoryUsage();

/**
 * Publish the current memory usage as the "obs.rss_bytes" and
 * "obs.rss_peak_bytes" gauges and, when tracing is enabled, as
 * Perfetto counter events. No-op readings (invalid) leave the
 * gauges untouched.
 *
 * @return The reading that was published.
 */
MemoryUsage sampleMemoryGauges();

} // namespace obs
} // namespace ucx

#endif // UCX_OBS_MEMORY_HH
