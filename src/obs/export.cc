#include "obs/export.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/str.hh"
#include "util/table.hh"

namespace ucx
{
namespace obs
{

namespace
{

double
nsToMs(uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

void
spanJson(const SpanStats &node, std::ostringstream &out)
{
    out << "{\"name\":\"" << jsonEscape(node.name) << "\""
        << ",\"calls\":" << node.calls
        << ",\"total_ms\":" << jsonNumber(nsToMs(node.totalNs))
        << ",\"self_ms\":" << jsonNumber(nsToMs(node.selfNs()))
        << ",\"children\":[";
    for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0)
            out << ",";
        spanJson(node.children[i], out);
    }
    out << "]}";
}

void
spanRows(const SpanStats &node, int depth, Table &table)
{
    std::string indent(static_cast<size_t>(depth) * 2, ' ');
    table.addRow({indent + node.name, std::to_string(node.calls),
                  fmtFixed(nsToMs(node.totalNs), 3),
                  fmtFixed(nsToMs(node.selfNs()), 3)});
    for (const auto &child : node.children)
        spanRows(child, depth + 1, table);
}

} // namespace

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    return buf;
}

std::string
snapshotJson(const MetricsSnapshot &metrics, const SpanStats &spans)
{
    std::ostringstream out;
    out << "{\"schema\":\"ucx.obs.v1\",\"counters\":{";
    for (size_t i = 0; i < metrics.counters.size(); ++i) {
        const auto &c = metrics.counters[i];
        if (i > 0)
            out << ",";
        out << "\"" << jsonEscape(c.name) << "\":" << c.value;
    }
    out << "},\"gauges\":{";
    for (size_t i = 0; i < metrics.gauges.size(); ++i) {
        const auto &g = metrics.gauges[i];
        if (i > 0)
            out << ",";
        out << "\"" << jsonEscape(g.name)
            << "\":" << jsonNumber(g.value);
    }
    out << "},\"histograms\":{";
    for (size_t i = 0; i < metrics.histograms.size(); ++i) {
        const auto &h = metrics.histograms[i];
        if (i > 0)
            out << ",";
        double mean = h.count == 0
                          ? 0.0
                          : h.sum / static_cast<double>(h.count);
        out << "\"" << jsonEscape(h.name) << "\":{"
            << "\"count\":" << h.count
            << ",\"sum\":" << jsonNumber(h.sum)
            << ",\"min\":" << jsonNumber(h.min)
            << ",\"max\":" << jsonNumber(h.max)
            << ",\"mean\":" << jsonNumber(mean)
            << ",\"p50\":" << jsonNumber(histogramQuantile(h, 0.50))
            << ",\"p90\":" << jsonNumber(histogramQuantile(h, 0.90))
            << ",\"p99\":" << jsonNumber(histogramQuantile(h, 0.99))
            << ",\"buckets\":[";
        bool first = true;
        for (size_t b = 0; b < h.buckets.size(); ++b) {
            if (h.buckets[b] == 0)
                continue;
            if (!first)
                out << ",";
            first = false;
            out << "{\"le\":"
                << jsonNumber(Histogram::bucketUpperBound(b))
                << ",\"count\":" << h.buckets[b] << "}";
        }
        out << "]}";
    }
    out << "},\"spans\":";
    spanJson(spans, out);
    out << "}";
    return out.str();
}

std::string
snapshotTable(const MetricsSnapshot &metrics, const SpanStats &spans)
{
    std::ostringstream out;
    if (!metrics.counters.empty() || !metrics.gauges.empty()) {
        Table t({"Metric", "Value"});
        for (const auto &c : metrics.counters)
            t.addRow({c.name, std::to_string(c.value)});
        for (const auto &g : metrics.gauges)
            t.addRow({g.name, fmtCompact(g.value, 4)});
        out << t.render() << "\n";
    }
    if (!metrics.histograms.empty()) {
        Table t({"Histogram", "Count", "Mean", "P50", "P90", "P99",
                 "Min", "Max"});
        for (const auto &h : metrics.histograms) {
            double mean = h.count == 0
                              ? 0.0
                              : h.sum / static_cast<double>(h.count);
            bool empty = h.count == 0;
            t.addRow({h.name, std::to_string(h.count),
                      fmtCompact(mean, 4),
                      empty ? "-"
                            : fmtCompact(histogramQuantile(h, 0.50), 4),
                      empty ? "-"
                            : fmtCompact(histogramQuantile(h, 0.90), 4),
                      empty ? "-"
                            : fmtCompact(histogramQuantile(h, 0.99), 4),
                      empty ? "-" : fmtCompact(h.min, 4),
                      empty ? "-" : fmtCompact(h.max, 4)});
        }
        out << t.render() << "\n";
    }
    if (!spans.children.empty()) {
        Table t({"Span", "Calls", "Total ms", "Self ms"});
        for (const auto &child : spans.children)
            spanRows(child, 0, t);
        out << t.render();
    }
    return out.str();
}

std::string
benchReportJson(const std::string &bench, double wall_ms)
{
    MetricsSnapshot metrics = Registry::instance().snapshot();
    SpanStats spans = spanSnapshot();
    auto env = [](const char *name) {
        const char *v = std::getenv(name);
        return v != nullptr ? std::string(v) : std::string();
    };
    std::ostringstream out;
    out << "{\"schema\":\"ucx.bench.v2\",\"bench\":\""
        << jsonEscape(bench)
        << "\",\"wall_ms\":" << jsonNumber(wall_ms)
        << ",\"settings\":{"
        << "\"ucx_threads\":\"" << jsonEscape(env("UCX_THREADS"))
        << "\",\"ucx_cache\":\"" << jsonEscape(env("UCX_CACHE"))
        << "\",\"ucx_cache_capacity\":\""
        << jsonEscape(env("UCX_CACHE_CAPACITY"))
        << "\",\"ucx_cache_dir\":\""
        << jsonEscape(env("UCX_CACHE_DIR")) << "\"}"
        << ",\"obs\":" << snapshotJson(metrics, spans) << "}\n";
    return out.str();
}

} // namespace obs
} // namespace ucx
