#include "obs/metrics.hh"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

namespace ucx
{
namespace obs
{

namespace
{

/** Collection flag: -1 = not yet read from the environment. */
std::atomic<int> collectionState{-1};

int
stateFromEnv()
{
    const char *env = std::getenv("UCX_OBS");
    bool on = env != nullptr && env[0] != '\0' &&
              !(env[0] == '0' && env[1] == '\0');
    return on ? 1 : 0;
}

} // namespace

bool
enabled()
{
    int state = collectionState.load(std::memory_order_relaxed);
    if (state < 0) {
        state = stateFromEnv();
        collectionState.store(state, std::memory_order_relaxed);
    }
    return state != 0;
}

void
setEnabled(bool on)
{
    collectionState.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ------------------------------------------------------- Histogram

Histogram::Histogram()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity())
{
}

size_t
Histogram::bucketIndex(double v)
{
    if (!(v >= 1.0))
        return 0;
    int exp = 0;
    std::frexp(v, &exp); // v = m * 2^exp with m in [0.5, 1)
    size_t idx = static_cast<size_t>(exp);
    return idx < kBuckets ? idx : kBuckets - 1;
}

double
Histogram::bucketUpperBound(size_t index)
{
    if (index + 1 >= kBuckets)
        return std::numeric_limits<double>::infinity();
    return std::ldexp(1.0, static_cast<int>(index));
}

void
Histogram::observe(double v)
{
    if (!enabled())
        return;
    if (std::isnan(v))
        return;
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);

    double old_sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(old_sum, old_sum + v,
                                       std::memory_order_relaxed)) {
    }
    double old_min = min_.load(std::memory_order_relaxed);
    while (v < old_min &&
           !min_.compare_exchange_weak(old_min, v,
                                       std::memory_order_relaxed)) {
    }
    double old_max = max_.load(std::memory_order_relaxed);
    while (v > old_max &&
           !max_.compare_exchange_weak(old_max, v,
                                       std::memory_order_relaxed)) {
    }
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> out(kBuckets);
    for (size_t i = 0; i < kBuckets; ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(),
               std::memory_order_relaxed);
}

double
histogramQuantile(const HistogramSample &sample, double q)
{
    if (sample.count == 0)
        return 0.0;
    if (q <= 0.0)
        return sample.min;
    if (q >= 1.0)
        return sample.max;
    double target = q * static_cast<double>(sample.count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < sample.buckets.size(); ++i) {
        uint64_t in_bucket = sample.buckets[i];
        if (in_bucket == 0)
            continue;
        double before = static_cast<double>(cumulative);
        cumulative += in_bucket;
        if (static_cast<double>(cumulative) < target)
            continue;
        // Interpolate inside [lower, upper); the exact min/max
        // envelope both seeds the open-ended bounds and clamps the
        // estimate.
        double lower = i == 0 ? 0.0 : Histogram::bucketUpperBound(i - 1);
        double upper = Histogram::bucketUpperBound(i);
        if (lower < sample.min)
            lower = sample.min;
        if (!(upper <= sample.max)) // also catches +inf
            upper = sample.max;
        if (upper < lower)
            upper = lower;
        double frac =
            (target - before) / static_cast<double>(in_bucket);
        return lower + frac * (upper - lower);
    }
    return sample.max;
}

// -------------------------------------------------------- Registry

struct Registry::Impl
{
    mutable std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Impl &
Registry::impl() const
{
    static Impl the_impl;
    return the_impl;
}

Registry &
Registry::instance()
{
    static Registry the_registry;
    return the_registry;
}

Counter &
Registry::counter(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto &slot = im.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto &slot = im.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    auto &slot = im.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

MetricsSnapshot
Registry::snapshot() const
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    MetricsSnapshot snap;
    snap.counters.reserve(im.counters.size());
    for (const auto &[name, c] : im.counters)
        snap.counters.push_back({name, c->value()});
    snap.gauges.reserve(im.gauges.size());
    for (const auto &[name, g] : im.gauges)
        snap.gauges.push_back({name, g->value()});
    snap.histograms.reserve(im.histograms.size());
    for (const auto &[name, h] : im.histograms) {
        HistogramSample s;
        s.name = name;
        s.count = h->count();
        s.sum = h->sum();
        s.min = h->min();
        s.max = h->max();
        s.buckets = h->bucketCounts();
        snap.histograms.push_back(std::move(s));
    }
    return snap;
}

void
Registry::reset()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mutex);
    for (auto &[name, c] : im.counters)
        c->reset();
    for (auto &[name, g] : im.gauges)
        g->reset();
    for (auto &[name, h] : im.histograms)
        h->reset();
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name)
{
    return Registry::instance().histogram(name);
}

} // namespace obs
} // namespace ucx
