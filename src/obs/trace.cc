#include "obs/trace.hh"

namespace ucx
{
namespace obs
{

void
ConvergenceTrace::record(const IterationSample &sample)
{
    bool keep = seen_ % stride_ == 0;
    ++seen_;
    if (!keep)
        return;
    samples_.push_back(sample);
    if (samples_.size() < kMaxSamples)
        return;
    // Decimate: keep every other sample, double the stride.
    size_t kept = 0;
    for (size_t i = 0; i < samples_.size(); i += 2)
        samples_[kept++] = samples_[i];
    samples_.resize(kept);
    stride_ *= 2;
}

void
ConvergenceTrace::append(const ConvergenceTrace &tail)
{
    size_t iter_base = 0;
    size_t eval_base = 0;
    if (!samples_.empty()) {
        iter_base = samples_.back().iteration + 1;
        eval_base = samples_.back().evaluations;
    }
    for (IterationSample s : tail.samples_) {
        s.iteration += iter_base;
        s.evaluations += eval_base;
        record(s);
    }
    if (!algorithm.empty() && !tail.algorithm.empty())
        algorithm += "+" + tail.algorithm;
    else if (algorithm.empty())
        algorithm = tail.algorithm;
    restarts += tail.restarts;
    converged = tail.converged;
}

void
ConvergenceTrace::clear()
{
    samples_.clear();
    stride_ = 1;
    seen_ = 0;
}

bool
ConvergenceTrace::monotoneNonIncreasing(double tol) const
{
    for (size_t i = 1; i < samples_.size(); ++i) {
        if (samples_[i].objective > samples_[i - 1].objective + tol)
            return false;
    }
    return true;
}

} // namespace obs
} // namespace ucx
