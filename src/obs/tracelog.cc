#include "obs/tracelog.hh"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/export.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ucx
{
namespace obs
{

namespace
{

using Clock = std::chrono::steady_clock;

/**
 * One thread's bounded event buffer. The owning thread is the only
 * writer: it fills events_[n] and then publishes with a release
 * store of count_; snapshot readers pair that with an acquire load.
 * Logs are never destroyed while the process runs (the registry owns
 * them), so a thread_local pointer stays valid after thread exit
 * bookkeeping.
 */
struct ThreadLog
{
    ThreadLog(uint32_t tid_in, size_t capacity) : tid(tid_in)
    {
        events.resize(capacity);
    }

    uint32_t tid;
    std::string threadName; ///< Guarded by the registry mutex.
    std::vector<TraceEvent> events;
    std::atomic<size_t> count{0};
    std::atomic<uint64_t> dropped{0};
};

/** Registry of every thread log; the mutex guards the vector and
 *  threadName only — event recording never takes it. */
struct LogRegistry
{
    std::mutex mutex;
    std::vector<std::unique_ptr<ThreadLog>> logs;
    Clock::time_point epoch = Clock::now();
    size_t capacityOverride = 0; ///< 0 = use the environment.
};

LogRegistry &
logRegistry()
{
    static LogRegistry the_registry;
    return the_registry;
}

thread_local ThreadLog *tlLog = nullptr;

ThreadLog &
localLog()
{
    if (tlLog != nullptr)
        return *tlLog;
    // Resolve the capacity before taking the registry mutex:
    // traceCapacity() locks it too and std::mutex is non-recursive.
    size_t capacity = traceCapacity();
    LogRegistry &reg = logRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto log = std::make_unique<ThreadLog>(
        static_cast<uint32_t>(reg.logs.size()), capacity);
    tlLog = log.get();
    reg.logs.push_back(std::move(log));
    return *tlLog;
}

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - logRegistry().epoch)
            .count());
}

void
emit(TraceEvent &&event)
{
    ThreadLog &log = localLog();
    size_t n = log.count.load(std::memory_order_relaxed);
    if (n >= log.events.size()) {
        log.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    log.events[n] = std::move(event);
    log.count.store(n + 1, std::memory_order_release);
}

size_t
capacityFromEnv()
{
    const char *env = std::getenv("UCX_TRACE_CAPACITY");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != nullptr && *end == '\0' && v >= 1)
            return static_cast<size_t>(v);
    }
    return 65536;
}

} // namespace

namespace detail
{

std::atomic<int> traceState{-1};

int
traceStateSlow()
{
    // Touch the registry first so its static outlives the atexit
    // writer registered below (registration order drives teardown).
    logRegistry();
    int state = tracePath().empty() ? 0 : 1;
    int expected = -1;
    if (detail::traceState.compare_exchange_strong(
            expected, state, std::memory_order_relaxed) &&
        state == 1) {
        std::atexit([] { writeTraceFile(); });
    }
    return detail::traceState.load(std::memory_order_relaxed);
}

} // namespace detail

void
setTraceEnabled(bool on)
{
    // Pin the epoch (and registry) before the first event lands.
    logRegistry();
    detail::traceState.store(on ? 1 : 0, std::memory_order_relaxed);
}

const std::string &
tracePath()
{
    static const std::string path = [] {
        const char *env = std::getenv("UCX_TRACE");
        return env != nullptr ? std::string(env) : std::string();
    }();
    return path;
}

size_t
traceCapacity()
{
    LogRegistry &reg = logRegistry();
    {
        std::lock_guard<std::mutex> lock(reg.mutex);
        if (reg.capacityOverride > 0)
            return reg.capacityOverride;
    }
    static const size_t env_capacity = capacityFromEnv();
    return env_capacity;
}

void
setTraceCapacity(size_t capacity)
{
    require(capacity >= 1, "trace capacity must be >= 1");
    LogRegistry &reg = logRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.capacityOverride = capacity;
}

void
setTraceThreadName(const std::string &name)
{
    if (!traceEnabled())
        return;
    ThreadLog &log = localLog();
    std::lock_guard<std::mutex> lock(logRegistry().mutex);
    log.threadName = name;
}

void
traceInstant(const char *name,
             std::vector<std::pair<std::string, std::string>> args)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Instant;
    event.tsNs = nowNs();
    event.name = name;
    event.args = std::move(args);
    emit(std::move(event));
}

void
traceCounter(const char *name, double value)
{
    if (!traceEnabled())
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Counter;
    event.tsNs = nowNs();
    event.name = name;
    event.value = value;
    emit(std::move(event));
}

TraceScope::TraceScope(const char *name)
{
    if (!traceEnabled())
        return;
    name_ = name;
    active_ = true;
    TraceEvent event;
    event.phase = TraceEvent::Phase::Begin;
    event.tsNs = nowNs();
    event.name = name;
    emit(std::move(event));
}

TraceScope::~TraceScope()
{
    if (!active_)
        return;
    TraceEvent event;
    event.phase = TraceEvent::Phase::End;
    event.tsNs = nowNs();
    event.name = name_;
    event.args = std::move(args_);
    emit(std::move(event));
}

TraceScope &
TraceScope::arg(const char *key, std::string value)
{
    if (active_)
        args_.emplace_back(key, std::move(value));
    return *this;
}

size_t
TraceSnapshot::eventCount() const
{
    size_t total = 0;
    for (const auto &t : threads)
        total += t.events.size();
    return total;
}

uint64_t
TraceSnapshot::droppedCount() const
{
    uint64_t total = 0;
    for (const auto &t : threads)
        total += t.dropped;
    return total;
}

TraceSnapshot
traceSnapshot()
{
    LogRegistry &reg = logRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    TraceSnapshot snap;
    snap.threads.reserve(reg.logs.size());
    for (const auto &log : reg.logs) {
        TraceThreadSnapshot ts;
        ts.tid = log->tid;
        ts.threadName = log->threadName;
        ts.dropped = log->dropped.load(std::memory_order_relaxed);
        size_t n = log->count.load(std::memory_order_acquire);
        ts.events.assign(log->events.begin(),
                         log->events.begin() +
                             static_cast<ptrdiff_t>(n));
        snap.threads.push_back(std::move(ts));
    }
    return snap;
}

void
resetTraceLog()
{
    LogRegistry &reg = logRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    size_t capacity = reg.capacityOverride > 0 ? reg.capacityOverride
                                               : capacityFromEnv();
    for (auto &log : reg.logs) {
        log->count.store(0, std::memory_order_relaxed);
        log->dropped.store(0, std::memory_order_relaxed);
        log->events.clear();
        log->events.resize(capacity);
    }
}

std::string
perfettoJson(const TraceSnapshot &snapshot)
{
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    auto comma = [&] {
        if (!first)
            out << ",";
        first = false;
    };
    comma();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"name\":\"ucx\"}}";
    for (const auto &t : snapshot.threads) {
        if (t.threadName.empty())
            continue;
        comma();
        out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
            << "\"tid\":" << t.tid << ",\"args\":{\"name\":\""
            << jsonEscape(t.threadName) << "\"}}";
    }
    for (const auto &t : snapshot.threads) {
        for (const TraceEvent &e : t.events) {
            comma();
            out << "{\"name\":\"" << jsonEscape(e.name) << "\""
                << ",\"ph\":\"" << static_cast<char>(e.phase) << "\""
                << ",\"pid\":1,\"tid\":" << t.tid << ",\"ts\":"
                << jsonNumber(static_cast<double>(e.tsNs) / 1e3);
            if (e.phase == TraceEvent::Phase::Instant)
                out << ",\"s\":\"t\"";
            if (e.phase == TraceEvent::Phase::Counter) {
                out << ",\"args\":{\"value\":" << jsonNumber(e.value)
                    << "}";
            } else if (!e.args.empty()) {
                out << ",\"args\":{";
                for (size_t i = 0; i < e.args.size(); ++i) {
                    if (i > 0)
                        out << ",";
                    out << "\"" << jsonEscape(e.args[i].first)
                        << "\":\"" << jsonEscape(e.args[i].second)
                        << "\"";
                }
                out << "}";
            }
            out << "}";
        }
    }
    out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
        << "\"schema\":\"ucx_tracelog.v1\",\"capacity\":"
        << traceCapacity()
        << ",\"dropped\":" << snapshot.droppedCount() << "}}\n";
    return out.str();
}

bool
writeTraceFile()
{
    const std::string &path = tracePath();
    if (path.empty())
        return false;
    TraceSnapshot snap = traceSnapshot();
    std::ofstream out(path);
    if (!out) {
        warn("could not write trace file " + path);
        return false;
    }
    out << perfettoJson(snap);
    return true;
}

void
resetAll()
{
    Registry::instance().reset();
    resetSpans();
    resetTraceLog();
}

} // namespace obs
} // namespace ucx
