/**
 * @file
 * ucx::obs — snapshot exporters.
 *
 * Serializes a metrics + span snapshot either as JSON (for machine
 * consumption, e.g. the BENCH_<name>.json files the bench harness
 * writes) or as aligned text tables (for eyeballing on stderr).
 */

#ifndef UCX_OBS_EXPORT_HH
#define UCX_OBS_EXPORT_HH

#include <string>

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace ucx
{
namespace obs
{

/**
 * Escape a string for inclusion in a JSON string literal (quotes,
 * backslashes, control characters).
 *
 * @param text Raw text.
 * @return The escaped text, without surrounding quotes.
 */
std::string jsonEscape(const std::string &text);

/**
 * Format a double as a JSON number token.
 *
 * @param value Value to format.
 * @return A JSON number, or "null" for NaN/infinity (which JSON
 *         cannot represent).
 */
std::string jsonNumber(double value);

/**
 * Serialize a snapshot as a JSON object:
 *
 *     {
 *       "schema": "ucx.obs.v1",
 *       "counters":   { "<name>": <count>, ... },
 *       "gauges":     { "<name>": <value>, ... },
 *       "histograms": { "<name>": { "count", "sum", "min", "max",
 *                                   "mean", "p50", "p90", "p99",
 *                                   "buckets": [
 *                                     {"le": <bound>, "count": n},
 *                                     ... (non-empty buckets only)
 *                                   ] }, ... },
 *       "spans": <span node>
 *     }
 *
 * where a span node is {"name", "calls", "total_ms", "self_ms",
 * "children": [...]}.
 *
 * @param metrics Registry snapshot.
 * @param spans   Trace-tree snapshot.
 * @return The JSON text (no trailing newline).
 */
std::string snapshotJson(const MetricsSnapshot &metrics,
                         const SpanStats &spans);

/**
 * Serialize a snapshot as aligned ASCII tables (counters/gauges,
 * histograms, and an indented span tree).
 *
 * @param metrics Registry snapshot.
 * @param spans   Trace-tree snapshot.
 * @return Human-readable text ending in a newline.
 */
std::string snapshotTable(const MetricsSnapshot &metrics,
                          const SpanStats &spans);

/**
 * Build the machine-readable bench report (schema ucx.bench.v2): the
 * current registry and span snapshots wrapped with the bench name,
 * wall time, and a "settings" object recording the raw UCX_THREADS /
 * UCX_CACHE / UCX_CACHE_CAPACITY environment ("" = unset), so
 * ucx_obsdiff can refuse apples-to-oranges comparisons. This is the
 * payload of the BENCH_<name>.json files.
 *
 * @param bench   Bench binary name.
 * @param wall_ms Total wall time of the bench run in milliseconds.
 * @return The JSON text, newline-terminated.
 */
std::string benchReportJson(const std::string &bench, double wall_ms);

} // namespace obs
} // namespace ucx

#endif // UCX_OBS_EXPORT_HH
