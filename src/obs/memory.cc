#include "obs/memory.hh"

#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hh"
#include "obs/tracelog.hh"

namespace ucx
{
namespace obs
{

MemoryUsage
readMemoryUsage()
{
    MemoryUsage usage;
#if defined(__linux__)
    std::ifstream status("/proc/self/status");
    if (!status)
        return usage;
    std::string line;
    while (std::getline(status, line)) {
        // "VmRSS:      12345 kB" / "VmHWM:      23456 kB"
        uint64_t *field = nullptr;
        if (line.rfind("VmRSS:", 0) == 0)
            field = &usage.rssBytes;
        else if (line.rfind("VmHWM:", 0) == 0)
            field = &usage.rssPeakBytes;
        if (field == nullptr)
            continue;
        std::istringstream fields(line.substr(6));
        uint64_t kb = 0;
        if (fields >> kb) {
            *field = kb * 1024;
            usage.valid = true;
        }
    }
#endif
    return usage;
}

MemoryUsage
sampleMemoryGauges()
{
    MemoryUsage usage = readMemoryUsage();
    if (!usage.valid)
        return usage;
    gauge("obs.rss_bytes").set(static_cast<double>(usage.rssBytes));
    gauge("obs.rss_peak_bytes")
        .set(static_cast<double>(usage.rssPeakBytes));
    if (traceEnabled()) {
        traceCounter("obs.rss_bytes",
                     static_cast<double>(usage.rssBytes));
        traceCounter("obs.rss_peak_bytes",
                     static_cast<double>(usage.rssPeakBytes));
    }
    return usage;
}

} // namespace obs
} // namespace ucx
