/**
 * @file
 * ucx::obs — process-wide metrics registry.
 *
 * Counters, gauges and histograms (fixed log2-scale buckets) shared
 * by every layer of the library. The registry is off by default:
 * collection is enabled either by setting the UCX_OBS environment
 * variable (any non-empty value except "0") or programmatically via
 * setEnabled(). When disabled every mutation is a single relaxed
 * atomic load plus an untaken branch, so instrumented hot paths cost
 * nothing measurable.
 *
 * Usage pattern at an instrumentation site (the static handle makes
 * the name lookup a one-time cost):
 *
 *     static obs::Counter &c = obs::counter("opt.nm.iterations");
 *     c.add(result.iterations);
 */

#ifndef UCX_OBS_METRICS_HH
#define UCX_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ucx
{
namespace obs
{

/**
 * @return True when observability collection is on. First use reads
 *         the UCX_OBS environment variable; setEnabled() overrides.
 */
bool enabled();

/**
 * Force collection on or off, overriding UCX_OBS.
 *
 * @param on New collection state.
 */
void setEnabled(bool on);

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Add @p n to the counter; no-op while collection is disabled. */
    void add(uint64_t n = 1)
    {
        if (enabled())
            value_.fetch_add(n, std::memory_order_relaxed);
    }

    /** @return The current count. */
    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset the count to zero. */
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    /** Record @p v; no-op while collection is disabled. */
    void set(double v)
    {
        if (enabled())
            value_.store(v, std::memory_order_relaxed);
    }

    /** @return The most recently set value (0 before any set). */
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Reset the gauge to zero. */
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Histogram over non-negative values with fixed log2-scale buckets:
 * bucket 0 holds values < 1, bucket i (1 <= i < kBuckets-1) holds
 * [2^(i-1), 2^i), and the last bucket holds everything larger.
 * Count/sum/min/max are tracked exactly.
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 40;

    /** Record @p v; no-op while collection is disabled. */
    void observe(double v);

    /**
     * @param v Observed value.
     * @return Index of the bucket @p v falls into.
     */
    static size_t bucketIndex(double v);

    /**
     * @param index Bucket index.
     * @return Exclusive upper bound of the bucket; +inf for the last.
     */
    static double bucketUpperBound(size_t index);

    /** @return Number of recorded observations. */
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** @return Sum of recorded observations. */
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /** @return Smallest recorded value (+inf when empty). */
    double min() const { return min_.load(std::memory_order_relaxed); }

    /** @return Largest recorded value (-inf when empty). */
    double max() const { return max_.load(std::memory_order_relaxed); }

    /** @return Mean of recorded values (0 when empty). */
    double mean() const;

    /** @return Per-bucket observation counts. */
    std::vector<uint64_t> bucketCounts() const;

    /** Reset all state. */
    void reset();

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_;
    std::atomic<double> max_;

  public:
    Histogram();
};

/** Point-in-time copy of one counter. */
struct CounterSample
{
    std::string name;
    uint64_t value = 0;
};

/** Point-in-time copy of one gauge. */
struct GaugeSample
{
    std::string name;
    double value = 0.0;
};

/** Point-in-time copy of one histogram. */
struct HistogramSample
{
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<uint64_t> buckets;
};

/**
 * Estimate a quantile of a histogram from its log2 buckets: find
 * the bucket where the cumulative count crosses q*count and
 * interpolate linearly inside it, clamping to the exactly-tracked
 * [min, max] envelope (so q=0/q=1 return min/max exactly).
 *
 * @param sample Histogram snapshot.
 * @param q      Quantile in [0, 1] (e.g. 0.5, 0.9, 0.99).
 * @return The estimated quantile; 0 when the histogram is empty.
 */
double histogramQuantile(const HistogramSample &sample, double q);

/** Point-in-time copy of the whole registry, sorted by name. */
struct MetricsSnapshot
{
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
};

/**
 * Process-wide, thread-safe name -> instrument registry. Handles
 * returned by counter()/gauge()/histogram() stay valid for the
 * process lifetime.
 */
class Registry
{
  public:
    /** @return The process-wide registry. */
    static Registry &instance();

    /** Find or create the counter named @p name. */
    Counter &counter(const std::string &name);

    /** Find or create the gauge named @p name. */
    Gauge &gauge(const std::string &name);

    /** Find or create the histogram named @p name. */
    Histogram &histogram(const std::string &name);

    /** @return A consistent copy of every registered instrument. */
    MetricsSnapshot snapshot() const;

    /** Zero every instrument (registrations are kept). */
    void reset();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

  private:
    Registry() = default;
    struct Impl;
    Impl &impl() const;
};

/** Shorthand for Registry::instance().counter(name). */
Counter &counter(const std::string &name);

/** Shorthand for Registry::instance().gauge(name). */
Gauge &gauge(const std::string &name);

/** Shorthand for Registry::instance().histogram(name). */
Histogram &histogram(const std::string &name);

} // namespace obs
} // namespace ucx

#endif // UCX_OBS_METRICS_HH
