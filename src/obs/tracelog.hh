/**
 * @file
 * ucx::obs — bounded, per-thread trace event log.
 *
 * The second observability layer next to the aggregated span tree:
 * individual begin/end/instant/counter events with thread ids,
 * nanosecond timestamps, and key=value attributes, exported as
 * Chrome/Perfetto "traceEvents" JSON (schema ucx_tracelog.v1) so a
 * run renders as one timeline track per thread.
 *
 * Collection is gated on the UCX_TRACE environment variable (a path;
 * the trace is written there at process exit and by BenchReport) or
 * programmatically via setTraceEnabled(). When tracing is off every
 * instrumentation site costs a single relaxed atomic load plus an
 * untaken branch — attribute strings are never even built (callers
 * guard them behind TraceScope::active() / traceEnabled()).
 *
 * Storage is a bounded per-thread buffer: each thread writes only its
 * own log, publication is one release store of the event count, and
 * readers (traceSnapshot) acquire it — no locks on the record path,
 * TSan-clean by construction. A full buffer never blocks: further
 * events are counted as dropped (UCX_TRACE_CAPACITY sets the
 * per-thread event capacity, default 65536).
 *
 * resetTraceLog() / resetAll() clear recorded events between
 * back-to-back runs in one process; they must not race with writers
 * (call them from quiescent points, the same contract as
 * Registry::reset()).
 */

#ifndef UCX_OBS_TRACELOG_HH
#define UCX_OBS_TRACELOG_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ucx
{
namespace obs
{

/** One recorded trace event. */
struct TraceEvent
{
    /** Chrome trace-event phase. */
    enum class Phase : char
    {
        Begin = 'B',   ///< Scope opened (TraceScope ctor).
        End = 'E',     ///< Scope closed (TraceScope dtor).
        Instant = 'i', ///< Point event.
        Counter = 'C', ///< Sampled numeric value.
    };

    Phase phase = Phase::Instant;
    uint64_t tsNs = 0; ///< Nanoseconds since the process trace epoch.
    std::string name;  ///< Event / scope / counter name.
    double value = 0.0; ///< Counter events only.

    /** key=value attributes (design, pass, cache hit/miss, ...). */
    std::vector<std::pair<std::string, std::string>> args;
};

namespace detail
{
/** -1 = not yet read from UCX_TRACE; 0 = off; 1 = on. */
extern std::atomic<int> traceState;
/** Slow path of traceEnabled(): read the environment once. */
int traceStateSlow();
} // namespace detail

/**
 * @return True when trace-event collection is on. First use reads
 *         the UCX_TRACE environment variable (any non-empty value
 *         enables tracing and names the output file);
 *         setTraceEnabled() overrides. The fast path is a single
 *         relaxed atomic load.
 */
inline bool
traceEnabled()
{
    int state = detail::traceState.load(std::memory_order_relaxed);
    if (state < 0)
        state = detail::traceStateSlow();
    return state != 0;
}

/** Force trace collection on or off, overriding UCX_TRACE. */
void setTraceEnabled(bool on);

/** @return The UCX_TRACE output path ("" when unset). */
const std::string &tracePath();

/**
 * @return Per-thread event capacity: setTraceCapacity() override,
 *         else UCX_TRACE_CAPACITY, else 65536.
 */
size_t traceCapacity();

/**
 * Override the per-thread event capacity. Applies to logs created
 * afterwards; resetTraceLog() re-applies it to existing logs.
 *
 * @param capacity New capacity; must be >= 1.
 */
void setTraceCapacity(size_t capacity);

/**
 * Name this thread's timeline track in the exported trace (e.g.
 * "pool-worker-3"). Registers the thread's log immediately, so named
 * threads appear in the export even before their first event.
 * No-op while tracing is disabled.
 *
 * @param name Track name.
 */
void setTraceThreadName(const std::string &name);

/**
 * Record an instant event on the calling thread's track.
 * The attribute strings are only built when tracing is enabled —
 * guard expensive values with traceEnabled().
 *
 * @param name Event name.
 * @param args key=value attributes.
 */
void traceInstant(
    const char *name,
    std::vector<std::pair<std::string, std::string>> args = {});

/**
 * Record a sampled numeric value ("C" event; Perfetto renders these
 * as a counter track).
 *
 * @param name  Counter name.
 * @param value Sampled value.
 */
void traceCounter(const char *name, double value);

/**
 * RAII begin/end event pair. Construction emits the Begin event,
 * destruction the End event; attributes added via arg() ride on the
 * End event (Chrome merges begin/end args into one slice).
 *
 * The constructor takes a static string so the disabled path does no
 * allocation: one relaxed atomic check, nothing else.
 */
class TraceScope
{
  public:
    /** @param name Scope name (static string; copied only when on). */
    explicit TraceScope(const char *name);

    ~TraceScope();

    /** @return True when this scope is recording events. */
    bool active() const { return active_; }

    /**
     * Attach a key=value attribute to the End event. No-op when
     * inactive — but build expensive values only behind active().
     *
     * @param key   Attribute name (static string).
     * @param value Attribute value.
     * @return *this, for chaining.
     */
    TraceScope &arg(const char *key, std::string value);

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    const char *name_ = nullptr;
    bool active_ = false;
    std::vector<std::pair<std::string, std::string>> args_;
};

/** Point-in-time copy of one thread's trace log. */
struct TraceThreadSnapshot
{
    uint32_t tid = 0;        ///< Stable track id (registration order).
    std::string threadName;  ///< Track name ("" = default).
    uint64_t dropped = 0;    ///< Events lost to a full buffer.
    std::vector<TraceEvent> events; ///< In record order.
};

/** Point-in-time copy of every thread's trace log. */
struct TraceSnapshot
{
    std::vector<TraceThreadSnapshot> threads; ///< Ordered by tid.

    /** @return Total event count across threads. */
    size_t eventCount() const;

    /** @return Total dropped-event count across threads. */
    uint64_t droppedCount() const;
};

/**
 * @return A copy of every thread's recorded events. Safe to call
 *         while other threads keep recording (their concurrently
 *         appended events may or may not be included).
 */
TraceSnapshot traceSnapshot();

/**
 * Drop all recorded events and dropped-event counts, and re-apply
 * the current capacity to every thread log. Must not race with
 * writers.
 */
void resetTraceLog();

/**
 * Serialize a snapshot in Chrome/Perfetto trace-event JSON: an
 * object with "traceEvents" (metadata thread_name events followed by
 * the recorded B/E/i/C events, ts in microseconds, one tid per
 * thread log) plus "otherData" carrying the ucx_tracelog.v1 schema
 * tag, the capacity, and the drop count. Loads directly in
 * Perfetto / chrome://tracing.
 *
 * @param snapshot Trace snapshot.
 * @return The JSON text, newline-terminated.
 */
std::string perfettoJson(const TraceSnapshot &snapshot);

/**
 * Write perfettoJson(traceSnapshot()) to the UCX_TRACE path.
 * Automatically invoked at process exit when UCX_TRACE is set (and
 * by BenchReport, so bench traces exist even on abnormal exits
 * after main).
 *
 * @return True when the file was written.
 */
bool writeTraceFile();

/**
 * Reset every observability surface: the metrics registry, the span
 * tree, and the trace event log. Back-to-back bench runs in one
 * process start from zero state without bleeding events.
 */
void resetAll();

} // namespace obs
} // namespace ucx

#endif // UCX_OBS_TRACELOG_HH
