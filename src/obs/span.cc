#include "obs/span.hh"

#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.hh"

namespace ucx
{
namespace obs
{

namespace
{

/** One live node of the trace tree. */
struct Node
{
    std::string name;
    uint64_t calls = 0;
    uint64_t totalNs = 0;
    Node *parent = nullptr;
    std::map<std::string, std::unique_ptr<Node>> children;
};

std::mutex treeMutex;

Node &
treeRoot()
{
    static Node root;
    root.name = "root";
    return root;
}

/**
 * Innermost open span of this thread; nullptr means the next span
 * opens at the root. Nodes are never deleted (resetSpans only zeroes
 * them), so these pointers stay valid for the process lifetime.
 */
thread_local Node *tlCurrent = nullptr;

void
zeroTree(Node &node)
{
    node.calls = 0;
    node.totalNs = 0;
    for (auto &[name, child] : node.children)
        zeroTree(*child);
}

void
copyTree(const Node &node, SpanStats &out)
{
    out.name = node.name;
    out.calls = node.calls;
    out.totalNs = node.totalNs;
    out.children.reserve(node.children.size());
    for (const auto &[name, child] : node.children) {
        SpanStats s;
        copyTree(*child, s);
        out.children.push_back(std::move(s));
    }
}

} // namespace

uint64_t
SpanStats::selfNs() const
{
    uint64_t child_total = 0;
    for (const auto &c : children)
        child_total += c.totalNs;
    return totalNs > child_total ? totalNs - child_total : 0;
}

const SpanStats *
SpanStats::child(const std::string &child_name) const
{
    for (const auto &c : children)
        if (c.name == child_name)
            return &c;
    return nullptr;
}

ScopedSpan::ScopedSpan(const std::string &name)
{
    if (!enabled() || name.empty())
        return;
    std::lock_guard<std::mutex> lock(treeMutex);
    Node *parent = tlCurrent != nullptr ? tlCurrent : &treeRoot();
    auto &slot = parent->children[name];
    if (!slot) {
        slot = std::make_unique<Node>();
        slot->name = name;
        slot->parent = parent;
    }
    tlCurrent = slot.get();
    node_ = slot.get();
    start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (node_ == nullptr)
        return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    std::lock_guard<std::mutex> lock(treeMutex);
    Node *node = static_cast<Node *>(node_);
    node->calls += 1;
    node->totalNs += ns;
    tlCurrent = node->parent == &treeRoot() ? nullptr : node->parent;
}

SpanStats
spanSnapshot()
{
    std::lock_guard<std::mutex> lock(treeMutex);
    SpanStats out;
    copyTree(treeRoot(), out);
    return out;
}

void
resetSpans()
{
    std::lock_guard<std::mutex> lock(treeMutex);
    zeroTree(treeRoot());
}

} // namespace obs
} // namespace ucx
