/**
 * @file
 * ucx::obs — per-iteration convergence traces for the optimizers.
 *
 * Unlike the metrics registry and spans, traces are not gated on
 * obs::enabled(): a ConvergenceTrace is part of an optimizer's
 * result (OptResult, MixedFit, PooledFit expose one), the same way
 * SAS PROC NLMIXED prints its iteration history. Recording one is a
 * handful of stores per optimizer iteration — far below the cost of
 * a single objective evaluation — so it is always on.
 *
 * Long runs are decimated: once the sample buffer reaches
 * kMaxSamples, every other sample is dropped and the sampling stride
 * doubles. Decimation keeps a subsequence of the true history, so
 * monotonicity diagnostics remain valid.
 */

#ifndef UCX_OBS_TRACE_HH
#define UCX_OBS_TRACE_HH

#include <cstddef>
#include <string>
#include <vector>

namespace ucx
{

namespace io
{
template <typename T> struct Serde; // src/io — binary artifact codec
}

namespace obs
{

/**
 * Optimizer state at one iteration. Fields an algorithm does not
 * track are NaN (e.g. gradNorm for Nelder-Mead, simplexSpread for
 * BFGS).
 */
struct IterationSample
{
    size_t iteration = 0;      ///< 0 = the starting point.
    double objective = 0.0;    ///< Best objective value so far.
    double gradNorm = 0.0;     ///< Max-abs gradient (BFGS).
    double stepSize = 0.0;     ///< Step length / simplex diameter.
    double simplexSpread = 0.0; ///< f spread over the simplex (NM).
    size_t evaluations = 0;    ///< Objective evaluations so far.
};

/** Iteration history of one optimization run. */
class ConvergenceTrace
{
  public:
    static constexpr size_t kMaxSamples = 1024;

    /** Append a sample, subject to stride decimation. */
    void record(const IterationSample &sample);

    /**
     * Append another trace after this one (multi-start polishing:
     * the Nelder-Mead history of the winning start followed by the
     * BFGS history). Iteration and evaluation numbers of @p tail are
     * shifted to continue this trace's; @p tail's convergence flag
     * and restart count are adopted.
     *
     * @param tail Trace of the follow-on optimizer run.
     */
    void append(const ConvergenceTrace &tail);

    /** Drop all samples and reset decimation. */
    void clear();

    /** @return True when no sample has been recorded. */
    bool empty() const { return samples_.empty(); }

    /** @return Number of retained samples (post decimation). */
    size_t size() const { return samples_.size(); }

    /** @return The retained samples, in iteration order. */
    const std::vector<IterationSample> &samples() const
    {
        return samples_;
    }

    /** @return First retained sample; trace must be non-empty. */
    const IterationSample &front() const { return samples_.front(); }

    /** @return Last retained sample; trace must be non-empty. */
    const IterationSample &back() const { return samples_.back(); }

    /**
     * Check that the recorded objective never increases from one
     * sample to the next.
     *
     * @param tol Allowed increase between consecutive samples.
     * @return True when the objective is monotone non-increasing.
     */
    bool monotoneNonIncreasing(double tol = 0.0) const;

    std::string algorithm; ///< "nelder_mead", "bfgs", or combined.
    size_t restarts = 0;   ///< Extra starting points explored.
    bool converged = false; ///< Final optimizer convergence flag.

  private:
    friend struct io::Serde<ConvergenceTrace>;

    std::vector<IterationSample> samples_;
    size_t stride_ = 1; ///< Record every stride_-th call.
    size_t seen_ = 0;   ///< record() calls so far.
};

} // namespace obs
} // namespace ucx

#endif // UCX_OBS_TRACE_HH
