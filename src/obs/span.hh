/**
 * @file
 * ucx::obs — scoped timer spans forming a hierarchical trace tree.
 *
 * A ScopedSpan measures the wall time (monotonic clock) between its
 * construction and destruction and attributes it to a node of a
 * process-wide trace tree. Nodes are keyed by (parent, name): two
 * spans with the same name opened under the same parent aggregate
 * into one node (call count + total time), so steady-state traces
 * stay bounded no matter how many times a stage runs.
 *
 * Nesting is tracked per thread: a span opened while another span is
 * live on the same thread becomes its child. Like the metrics
 * registry, spans are no-ops while obs::enabled() is false.
 */

#ifndef UCX_OBS_SPAN_HH
#define UCX_OBS_SPAN_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ucx
{
namespace obs
{

/** Snapshot of one trace-tree node. */
struct SpanStats
{
    std::string name;
    uint64_t calls = 0;    ///< Completed spans aggregated here.
    uint64_t totalNs = 0;  ///< Wall time summed over those spans.
    std::vector<SpanStats> children;

    /** @return Total time minus the time of all children. */
    uint64_t selfNs() const;

    /**
     * Find a direct child by name.
     *
     * @param child_name Name to look up.
     * @return The child, or nullptr.
     */
    const SpanStats *child(const std::string &child_name) const;
};

/**
 * RAII timer span. Construct to open, destroy to close and record.
 * A span constructed with an empty name, or while collection is
 * disabled, records nothing.
 */
class ScopedSpan
{
  public:
    /**
     * Open a span.
     *
     * @param name Stage name; aggregation key under the parent span.
     */
    explicit ScopedSpan(const std::string &name);

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    void *node_ = nullptr; ///< Internal tree node; null when inert.
    std::chrono::steady_clock::time_point start_;
};

/**
 * @return A copy of the whole trace tree. The root is a synthetic
 *         node named "root" whose children are the top-level spans;
 *         its calls/totalNs stay zero.
 */
SpanStats spanSnapshot();

/** Drop all recorded spans (open spans keep recording safely). */
void resetSpans();

} // namespace obs
} // namespace ucx

#endif // UCX_OBS_SPAN_HH
