/**
 * @file
 * Synthetic instruction decoder for a small RISC encoding.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *decoderSource = R"HDL(
// Decoder for a 32-bit RISC-like encoding:
//   [31:26] opcode, [25:21] rd, [20:16] rs1, [15:11] rs2,
//   [15:0] imm16.
module decoder #(parameter W = 32) (
    input  wire [W-1:0] instr,
    output reg  [3:0]   alu_op,
    output wire [4:0]   rd,
    output wire [4:0]   rs1,
    output wire [4:0]   rs2,
    output wire [15:0]  imm,
    output reg          uses_imm,
    output reg          is_load,
    output reg          is_store,
    output reg          is_branch,
    output reg          writes_rd
);
    wire [5:0] opcode;
    assign opcode = instr[31:26];
    assign rd  = instr[25:21];
    assign rs1 = instr[20:16];
    assign rs2 = instr[15:11];
    assign imm = instr[15:0];

    always @* begin
        alu_op    = 4'd0;
        uses_imm  = 1'b0;
        is_load   = 1'b0;
        is_store  = 1'b0;
        is_branch = 1'b0;
        writes_rd = 1'b1;
        case (opcode)
            6'd0: alu_op = 4'd0;                    // add
            6'd1: alu_op = 4'd1;                    // sub
            6'd2: alu_op = 4'd2;                    // and
            6'd3: alu_op = 4'd3;                    // or
            6'd4: alu_op = 4'd4;                    // xor
            6'd5: begin alu_op = 4'd0; uses_imm = 1'b1; end // addi
            6'd6: begin alu_op = 4'd2; uses_imm = 1'b1; end // andi
            6'd7: begin alu_op = 4'd8; end          // slt
            6'd8: begin                              // load
                is_load  = 1'b1;
                uses_imm = 1'b1;
            end
            6'd9: begin                              // store
                is_store  = 1'b1;
                uses_imm  = 1'b1;
                writes_rd = 1'b0;
            end
            6'd10: begin                             // beq
                is_branch = 1'b1;
                writes_rd = 1'b0;
                alu_op    = 4'd1;
            end
            6'd11: begin                             // bne
                is_branch = 1'b1;
                writes_rd = 1'b0;
                alu_op    = 4'd1;
            end
            default: begin
                writes_rd = 1'b0;                    // nop / illegal
            end
        endcase
    end
endmodule
)HDL";

} // namespace ucx
