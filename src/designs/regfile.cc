/**
 * @file
 * Synthetic register file: parameterized width/depth, two read
 * ports, one write port, with write-through bypass.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *regfileSource = R"HDL(
// Two-read one-write register file with same-cycle bypass.
module regfile #(parameter W = 32, parameter AW = 5) (
    input  wire          clk,
    input  wire          we,
    input  wire [AW-1:0] waddr,
    input  wire [W-1:0]  wdata,
    input  wire [AW-1:0] raddr0,
    input  wire [AW-1:0] raddr1,
    output wire [W-1:0]  rdata0,
    output wire [W-1:0]  rdata1
);
    reg [W-1:0] regs [0:(1<<AW)-1];

    always @(posedge clk) begin
        if (we)
            regs[waddr] <= wdata;
    end

    // Bypass a same-cycle write to a matching read.
    wire hit0;
    wire hit1;
    assign hit0 = we & (raddr0 == waddr);
    assign hit1 = we & (raddr1 == waddr);
    assign rdata0 = hit0 ? wdata : regs[raddr0];
    assign rdata1 = hit1 ? wdata : regs[raddr1];
endmodule
)HDL";

} // namespace ucx
