/**
 * @file
 * Synthetic cache controller and memory controller components.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *cacheCtrlSource = R"HDL(
// Direct-mapped write-through cache controller with a refill FSM.
module cache_ctrl #(parameter W = 32, parameter IDXW = 6,
                    parameter TAGW = 20) (
    input  wire          clk,
    input  wire          rst,
    // CPU side.
    input  wire          req_valid,
    input  wire          req_write,
    input  wire [W-1:0]  req_addr,
    input  wire [W-1:0]  req_wdata,
    output reg           resp_valid,
    output wire [W-1:0]  resp_rdata,
    output wire          busy,
    // Memory side.
    output reg           mem_req,
    output reg           mem_write,
    output wire [W-1:0]  mem_addr,
    output wire [W-1:0]  mem_wdata,
    input  wire          mem_ack,
    input  wire [W-1:0]  mem_rdata
);
    localparam ST_IDLE   = 2'd0;
    localparam ST_LOOKUP = 2'd1;
    localparam ST_REFILL = 2'd2;
    localparam ST_WRITE  = 2'd3;

    reg [1:0] state;

    reg [TAGW-1:0] tags  [0:(1<<IDXW)-1];
    reg [W-1:0]    data  [0:(1<<IDXW)-1];
    reg [(1<<IDXW)-1:0] valid;

    reg [W-1:0] held_addr;
    reg [W-1:0] held_wdata;
    reg         held_write;

    wire [IDXW-1:0] idx;
    wire [TAGW-1:0] tag;
    assign idx = held_addr[IDXW+1:2];
    assign tag = held_addr[IDXW+TAGW+1:IDXW+2];

    wire [TAGW-1:0] stored_tag;
    assign stored_tag = tags[idx];
    wire [(1<<IDXW)-1:0] valid_shifted;
    assign valid_shifted = valid >> idx;
    wire line_valid;
    assign line_valid = valid_shifted[0];
    wire hit;
    assign hit = line_valid & (stored_tag == tag);

    assign resp_rdata = data[idx];
    assign busy = state != ST_IDLE;
    assign mem_addr  = held_addr;
    assign mem_wdata = held_wdata;

    always @(posedge clk) begin
        resp_valid <= 1'b0;
        mem_req    <= 1'b0;
        mem_write  <= 1'b0;
        if (rst) begin
            state <= ST_IDLE;
            valid <= {(1<<IDXW){1'b0}};
            held_addr  <= {W{1'b0}};
            held_wdata <= {W{1'b0}};
            held_write <= 1'b0;
        end else begin
            case (state)
                ST_IDLE: begin
                    if (req_valid) begin
                        held_addr  <= req_addr;
                        held_wdata <= req_wdata;
                        held_write <= req_write;
                        state <= ST_LOOKUP;
                    end
                end
                ST_LOOKUP: begin
                    if (held_write) begin
                        // Write-through: update line if present and
                        // always write memory.
                        if (hit)
                            data[idx] <= held_wdata;
                        mem_req   <= 1'b1;
                        mem_write <= 1'b1;
                        state <= ST_WRITE;
                    end else begin
                        if (hit) begin
                            resp_valid <= 1'b1;
                            state <= ST_IDLE;
                        end else begin
                            mem_req <= 1'b1;
                            state <= ST_REFILL;
                        end
                    end
                end
                ST_REFILL: begin
                    if (mem_ack) begin
                        data[idx] <= mem_rdata;
                        tags[idx] <= tag;
                        valid <= valid |
                            ({{((1<<IDXW)-1){1'b0}}, 1'b1} << idx);
                        resp_valid <= 1'b1;
                        state <= ST_IDLE;
                    end else begin
                        mem_req <= 1'b1;
                    end
                end
                ST_WRITE: begin
                    if (mem_ack) begin
                        resp_valid <= 1'b1;
                        state <= ST_IDLE;
                    end else begin
                        mem_req   <= 1'b1;
                        mem_write <= 1'b1;
                    end
                end
                default: state <= ST_IDLE;
            endcase
        end
    end
endmodule
)HDL";

const char *memCtrlSource = R"HDL(
// Simple SDRAM-style memory controller: bank tracking, a refresh
// counter, and a request FSM.
module memctrl #(parameter W = 32, parameter BANKS = 4,
                 parameter REFRESH_BITS = 10) (
    input  wire          clk,
    input  wire          rst,
    input  wire          req_valid,
    input  wire          req_write,
    input  wire [W-1:0]  req_addr,
    input  wire [W-1:0]  req_wdata,
    output reg           resp_valid,
    output reg  [W-1:0]  resp_rdata,
    // DRAM pins (modeled).
    output reg           cmd_activate,
    output reg           cmd_rw,
    output reg           cmd_refresh,
    output wire [W-1:0]  dram_addr,
    output wire [W-1:0]  dram_wdata,
    input  wire [W-1:0]  dram_rdata
);
    localparam ST_IDLE     = 3'd0;
    localparam ST_ACTIVATE = 3'd1;
    localparam ST_RW       = 3'd2;
    localparam ST_DONE     = 3'd3;
    localparam ST_REFRESH  = 3'd4;

    reg [2:0] state;
    reg [REFRESH_BITS-1:0] refresh_ctr;
    reg refresh_due;

    // One open-row tracker per bank.
    genvar g;
    wire [BANKS-1:0] row_hit;
    reg  [W-1:0] held_addr;
    reg  [W-1:0] held_wdata;
    reg          held_write;

    wire [1:0] bank_sel;
    assign bank_sel = held_addr[3:2];

    generate
        for (g = 0; g < BANKS; g = g + 1) begin : bank
            reg [15:0] open_row;
            reg        row_open;
            assign row_hit[g] = row_open &
                                (open_row == held_addr[19:4]);
            always @(posedge clk) begin
                if (rst) begin
                    open_row <= 16'd0;
                    row_open <= 1'b0;
                end else begin
                    if ((state == ST_ACTIVATE) &&
                        (bank_sel == g)) begin
                        open_row <= held_addr[19:4];
                        row_open <= 1'b1;
                    end
                    if (state == ST_REFRESH)
                        row_open <= 1'b0;
                end
            end
        end
    endgenerate

    wire [BANKS-1:0] hit_shifted;
    assign hit_shifted = row_hit >> bank_sel;
    wire cur_row_hit;
    assign cur_row_hit = hit_shifted[0];

    assign dram_addr  = held_addr;
    assign dram_wdata = held_wdata;

    always @(posedge clk) begin
        resp_valid   <= 1'b0;
        cmd_activate <= 1'b0;
        cmd_rw       <= 1'b0;
        cmd_refresh  <= 1'b0;
        if (rst) begin
            state <= ST_IDLE;
            refresh_ctr <= {REFRESH_BITS{1'b0}};
            refresh_due <= 1'b0;
            held_addr   <= {W{1'b0}};
            held_wdata  <= {W{1'b0}};
            held_write  <= 1'b0;
            resp_rdata  <= {W{1'b0}};
        end else begin
            refresh_ctr <= refresh_ctr + 1'b1;
            if (&refresh_ctr)
                refresh_due <= 1'b1;
            case (state)
                ST_IDLE: begin
                    if (refresh_due) begin
                        cmd_refresh <= 1'b1;
                        refresh_due <= 1'b0;
                        state <= ST_REFRESH;
                    end else begin
                        if (req_valid) begin
                            held_addr  <= req_addr;
                            held_wdata <= req_wdata;
                            held_write <= req_write;
                            state <= ST_ACTIVATE;
                        end
                    end
                end
                ST_ACTIVATE: begin
                    if (cur_row_hit) begin
                        state <= ST_RW;
                    end else begin
                        cmd_activate <= 1'b1;
                        state <= ST_RW;
                    end
                end
                ST_RW: begin
                    cmd_rw <= 1'b1;
                    if (!held_write)
                        resp_rdata <= dram_rdata;
                    state <= ST_DONE;
                end
                ST_DONE: begin
                    resp_valid <= 1'b1;
                    state <= ST_IDLE;
                end
                ST_REFRESH: begin
                    state <= ST_IDLE;
                end
                default: state <= ST_IDLE;
            endcase
        end
    end
endmodule
)HDL";

} // namespace ucx
