/**
 * @file
 * Synthetic execute cluster (multiple ALU lanes with a bypass
 * network) and a sequential multiplier — components with heavy
 * instance replication, the accounting-ablation showcases.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *execClusterSource = R"HDL(
// Multi-lane execute cluster: LANES identical ALUs plus a full
// bypass network between lanes. With the accounting procedure the
// ALU counts once and LANES scales to its minimal non-degenerate
// value; without it, every lane's logic is measured.
module exec_cluster #(parameter W = 16, parameter LANES = 4) (
    input  wire               clk,
    input  wire               rst,
    input  wire [LANES*W-1:0] op_a_flat,
    input  wire [LANES*W-1:0] op_b_flat,
    input  wire [LANES*4-1:0] op_sel_flat,
    input  wire [LANES*2-1:0] byp_a_sel_flat,
    output wire [LANES*W-1:0] result_flat,
    output wire [LANES-1:0]   zero_flat
);
    genvar g;
    // Last-cycle results for bypassing.
    reg [LANES*W-1:0] prev_results;

    generate
        for (g = 0; g < LANES; g = g + 1) begin : lane
            wire [W-1:0] a_raw;
            wire [W-1:0] b_in;
            wire [3:0]   op;
            wire [1:0]   byp;
            assign a_raw = op_a_flat[(g+1)*W-1:g*W];
            assign b_in  = op_b_flat[(g+1)*W-1:g*W];
            assign op    = op_sel_flat[(g+1)*4-1:g*4];
            assign byp   = byp_a_sel_flat[(g+1)*2-1:g*2];

            // Bypass mux: operand A may come from any lane's
            // previous result.
            wire [LANES*W-1:0] prev_shifted;
            assign prev_shifted = prev_results >> (byp * W);
            wire [W-1:0] a_byp;
            assign a_byp = prev_shifted[W-1:0];
            wire [W-1:0] a_in;
            assign a_in = (byp == 2'd0) ? a_raw : a_byp;

            wire [W-1:0] y;
            wire         z;
            wire         n;
            alu #(.W(W)) u_alu (
                .a(a_in),
                .b(b_in),
                .op(op),
                .y(y),
                .zero(z),
                .neg(n)
            );
            assign result_flat[(g+1)*W-1:g*W] = y;
            assign zero_flat[g] = z;
        end
    endgenerate

    always @(posedge clk) begin
        if (rst)
            prev_results <= {(LANES*W){1'b0}};
        else
            prev_results <= result_flat;
    end
endmodule
)HDL";

const char *serialMulSource = R"HDL(
// Sequential shift-add multiplier: W cycles per product.
module serial_mul #(parameter W = 16) (
    input  wire           clk,
    input  wire           rst,
    input  wire           start,
    input  wire [W-1:0]   a,
    input  wire [W-1:0]   b,
    output reg            done,
    output reg  [2*W-1:0] product
);
    localparam CNTW = 6;

    reg [2*W-1:0] acc;
    reg [2*W-1:0] shifted_a;
    reg [W-1:0]   remaining_b;
    reg [CNTW-1:0] cycles;
    reg busy;

    always @(posedge clk) begin
        done <= 1'b0;
        if (rst) begin
            acc         <= {(2*W){1'b0}};
            shifted_a   <= {(2*W){1'b0}};
            remaining_b <= {W{1'b0}};
            cycles      <= {CNTW{1'b0}};
            busy        <= 1'b0;
            product     <= {(2*W){1'b0}};
        end else begin
            if (start & !busy) begin
                acc         <= {(2*W){1'b0}};
                shifted_a   <= {{W{1'b0}}, a};
                remaining_b <= b;
                cycles      <= {CNTW{1'b0}};
                busy        <= 1'b1;
            end else begin
                if (busy) begin
                    if (remaining_b[0])
                        acc <= acc + shifted_a;
                    shifted_a   <= shifted_a << 1;
                    remaining_b <= remaining_b >> 1;
                    cycles      <= cycles + 1'b1;
                    if (cycles == (W - 1)) begin
                        busy    <= 1'b0;
                        done    <= 1'b1;
                        product <= remaining_b[0]
                                   ? (acc + shifted_a) : acc;
                    end
                end
            end
        end
    end
endmodule
)HDL";

} // namespace ucx
