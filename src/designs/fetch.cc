/**
 * @file
 * Synthetic fetch unit: PC generation, gshare branch predictor, and
 * a direct-mapped branch target buffer.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *fetchSource = R"HDL(
// Gshare predictor: global history register XOR PC indexes a
// pattern history table of 2-bit saturating counters.
module gshare #(parameter HIST = 8, parameter IDXW = 10) (
    input  wire            clk,
    input  wire            rst,
    input  wire [IDXW-1:0] lookup_pc,
    output wire            predict_taken,
    // Update interface (at resolve time).
    input  wire            update_en,
    input  wire [IDXW-1:0] update_pc,
    input  wire            update_taken
);
    reg [HIST-1:0] ghr;
    reg [1:0] pht [0:(1<<IDXW)-1];

    wire [IDXW-1:0] lookup_idx;
    wire [IDXW-1:0] update_idx;
    assign lookup_idx = lookup_pc ^ {{(IDXW-HIST){1'b0}}, ghr};
    assign update_idx = update_pc ^ {{(IDXW-HIST){1'b0}}, ghr};

    wire [1:0] counter;
    assign counter = pht[lookup_idx];
    assign predict_taken = counter[1];

    wire [1:0] old_counter;
    assign old_counter = pht[update_idx];
    wire [1:0] next_counter;
    assign next_counter =
        update_taken ? ((old_counter == 2'd3) ? 2'd3
                                              : (old_counter + 2'd1))
                     : ((old_counter == 2'd0) ? 2'd0
                                              : (old_counter - 2'd1));

    always @(posedge clk) begin
        if (rst) begin
            ghr <= {HIST{1'b0}};
        end else begin
            if (update_en) begin
                pht[update_idx] <= next_counter;
                ghr <= {ghr[HIST-2:0], update_taken};
            end
        end
    end
endmodule

// Direct-mapped branch target buffer.
module btb #(parameter W = 32, parameter IDXW = 8,
             parameter TAGW = 10) (
    input  wire          clk,
    input  wire          rst,
    input  wire [W-1:0]  lookup_pc,
    output wire          hit,
    output wire [W-1:0]  target,
    input  wire          update_en,
    input  wire [W-1:0]  update_pc,
    input  wire [W-1:0]  update_target
);
    reg [TAGW-1:0] tags    [0:(1<<IDXW)-1];
    reg [W-1:0]    targets [0:(1<<IDXW)-1];
    reg [(1<<IDXW)-1:0] valid;

    wire [IDXW-1:0] idx;
    wire [TAGW-1:0] tag;
    assign idx = lookup_pc[IDXW+1:2];
    assign tag = lookup_pc[IDXW+TAGW+1:IDXW+2];

    wire [IDXW-1:0] uidx;
    wire [TAGW-1:0] utag;
    assign uidx = update_pc[IDXW+1:2];
    assign utag = update_pc[IDXW+TAGW+1:IDXW+2];

    wire [TAGW-1:0] stored_tag;
    assign stored_tag = tags[idx];
    wire [(1<<IDXW)-1:0] valid_shifted;
    assign valid_shifted = valid >> idx;
    wire valid_bit;
    assign valid_bit = valid_shifted[0];
    assign hit = valid_bit & (stored_tag == tag);
    assign target = targets[idx];

    always @(posedge clk) begin
        if (rst) begin
            valid <= {(1<<IDXW){1'b0}};
        end else begin
            if (update_en) begin
                tags[uidx]    <= utag;
                targets[uidx] <= update_target;
                valid <= valid | ({{((1<<IDXW)-1){1'b0}}, 1'b1} << uidx);
            end
        end
    end
endmodule

// Fetch unit: sequential/predicted/redirected PC selection.
module fetch #(parameter W = 32, parameter IDXW = 8,
               parameter HIST = 8) (
    input  wire          clk,
    input  wire          rst,
    output wire [W-1:0]  imem_addr,
    input  wire          stall,
    // Redirect from execute on mispredict.
    input  wire          redirect,
    input  wire [W-1:0]  redirect_pc,
    // Branch resolution for predictor training.
    input  wire          resolve_en,
    input  wire [W-1:0]  resolve_pc,
    input  wire          resolve_taken,
    input  wire [W-1:0]  resolve_target,
    // Fetched PC handed to decode.
    output reg  [W-1:0]  fetch_pc,
    output reg           fetch_valid
);
    reg [W-1:0] pc;

    wire predict_taken;
    gshare #(.HIST(HIST), .IDXW(IDXW+2)) u_gshare (
        .clk(clk),
        .rst(rst),
        .lookup_pc(pc[IDXW+3:2]),
        .predict_taken(predict_taken),
        .update_en(resolve_en),
        .update_pc(resolve_pc[IDXW+3:2]),
        .update_taken(resolve_taken)
    );

    wire        btb_hit;
    wire [W-1:0] btb_target;
    btb #(.W(W), .IDXW(IDXW)) u_btb (
        .clk(clk),
        .rst(rst),
        .lookup_pc(pc),
        .hit(btb_hit),
        .target(btb_target),
        .update_en(resolve_en & resolve_taken),
        .update_pc(resolve_pc),
        .update_target(resolve_target)
    );

    wire take_pred;
    assign take_pred = predict_taken & btb_hit;
    wire [W-1:0] pc_next;
    assign pc_next = redirect ? redirect_pc
                   : (take_pred ? btb_target : (pc + 4));

    assign imem_addr = pc;

    always @(posedge clk) begin
        if (rst) begin
            pc          <= {W{1'b0}};
            fetch_pc    <= {W{1'b0}};
            fetch_valid <= 1'b0;
        end else begin
            if (!stall) begin
                pc          <= pc_next;
                fetch_pc    <= pc;
                fetch_valid <= !redirect;
            end
        end
    end
endmodule
)HDL";

} // namespace ucx
