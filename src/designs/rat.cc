/**
 * @file
 * Synthetic register alias tables: the standard 4-wide design and
 * the sliding-register-window variant (the RAT project of the
 * paper's evaluation, Section 4.1).
 */

#include "designs/sources.hh"

namespace ucx
{

const char *ratStandardSource = R"HDL(
// Standard register alias table: renames up to WIDTH instructions
// per cycle, with intra-bundle dependency checks so later slots see
// the mappings allocated by earlier slots in the same cycle.
module rat_standard #(parameter WIDTH = 4, parameter LREGW = 5,
                      parameter PREGW = 7) (
    input  wire                   clk,
    input  wire                   rst,
    // Per-slot rename requests (flattened).
    input  wire [WIDTH-1:0]       req_valid,
    input  wire [WIDTH*LREGW-1:0] lsrc1_flat,
    input  wire [WIDTH*LREGW-1:0] lsrc2_flat,
    input  wire [WIDTH*LREGW-1:0] ldst_flat,
    input  wire [WIDTH*PREGW-1:0] pdst_flat,
    // Renamed outputs.
    output wire [WIDTH*PREGW-1:0] psrc1_flat,
    output wire [WIDTH*PREGW-1:0] psrc2_flat
);
    genvar g;
    genvar h;

    reg [PREGW-1:0] map [0:(1<<LREGW)-1];

    generate
        for (g = 0; g < WIDTH; g = g + 1) begin : slot
            wire [LREGW-1:0] s1;
            wire [LREGW-1:0] s2;
            assign s1 = lsrc1_flat[(g+1)*LREGW-1:g*LREGW];
            assign s2 = lsrc2_flat[(g+1)*LREGW-1:g*LREGW];

            // Table lookups.
            wire [PREGW-1:0] t1;
            wire [PREGW-1:0] t2;
            assign t1 = map[s1];
            assign t2 = map[s2];

            // Intra-bundle bypass: chain of override muxes walking
            // earlier slots; the newest older writer wins.
            wire [(g+1)*PREGW-1:0] c1;
            wire [(g+1)*PREGW-1:0] c2;
            assign c1[PREGW-1:0] = t1;
            assign c2[PREGW-1:0] = t2;
            for (h = 0; h < g; h = h + 1) begin : dep
                wire hit1;
                wire hit2;
                assign hit1 = req_valid[h] &
                    (ldst_flat[(h+1)*LREGW-1:h*LREGW] == s1);
                assign hit2 = req_valid[h] &
                    (ldst_flat[(h+1)*LREGW-1:h*LREGW] == s2);
                assign c1[(h+2)*PREGW-1:(h+1)*PREGW] = hit1
                    ? pdst_flat[(h+1)*PREGW-1:h*PREGW]
                    : c1[(h+1)*PREGW-1:h*PREGW];
                assign c2[(h+2)*PREGW-1:(h+1)*PREGW] = hit2
                    ? pdst_flat[(h+1)*PREGW-1:h*PREGW]
                    : c2[(h+1)*PREGW-1:h*PREGW];
            end
            assign psrc1_flat[(g+1)*PREGW-1:g*PREGW] =
                c1[(g+1)*PREGW-1:g*PREGW];
            assign psrc2_flat[(g+1)*PREGW-1:g*PREGW] =
                c2[(g+1)*PREGW-1:g*PREGW];

            // Table update: last slot writing a logical register
            // wins; earlier writes to the same register are
            // overwritten in program order next cycle anyway, so a
            // plain per-slot write port suffices here.
            always @(posedge clk) begin
                if (!rst) begin
                    if (req_valid[g]) begin
                        map[ldst_flat[(g+1)*LREGW-1:g*LREGW]] <=
                            pdst_flat[(g+1)*PREGW-1:g*PREGW];
                    end
                end
            end
        end
    endgenerate
endmodule
)HDL";

const char *ratSlidingSource = R"HDL(
// Register alias table with sliding register windows: logical
// registers in the windowed range are offset by the current window
// pointer before the table lookup (Sparc-style windows, paper
// Section 4.1 and reference [16]).
module rat_sliding #(parameter WIDTH = 4, parameter LREGW = 5,
                     parameter PREGW = 7, parameter WINW = 3) (
    input  wire                   clk,
    input  wire                   rst,
    input  wire [WIDTH-1:0]       req_valid,
    input  wire [WIDTH*LREGW-1:0] lsrc1_flat,
    input  wire [WIDTH*LREGW-1:0] lsrc2_flat,
    input  wire [WIDTH*LREGW-1:0] ldst_flat,
    input  wire [WIDTH*PREGW-1:0] pdst_flat,
    // Window control: save/restore slide the window pointer.
    input  wire                   win_save,
    input  wire                   win_restore,
    output wire [WIDTH*PREGW-1:0] psrc1_flat,
    output wire [WIDTH*PREGW-1:0] psrc2_flat
);
    genvar g;
    genvar h;

    reg [WINW-1:0] cwp;
    // The windowed table is larger: one window's worth of extra
    // logical names per window position.
    reg [PREGW-1:0] map [0:(1<<(LREGW+WINW))-1];

    always @(posedge clk) begin
        if (rst)
            cwp <= {WINW{1'b0}};
        else begin
            if (win_save)
                cwp <= cwp + 1'b1;
            else begin
                if (win_restore)
                    cwp <= cwp - 1'b1;
            end
        end
    end

    generate
        for (g = 0; g < WIDTH; g = g + 1) begin : slot
            wire [LREGW-1:0] s1;
            wire [LREGW-1:0] s2;
            wire [LREGW-1:0] d;
            assign s1 = lsrc1_flat[(g+1)*LREGW-1:g*LREGW];
            assign s2 = lsrc2_flat[(g+1)*LREGW-1:g*LREGW];
            assign d  = ldst_flat[(g+1)*LREGW-1:g*LREGW];

            // Window translation: registers 8..31 are windowed (the
            // top bit pair selects globals vs window), modeled as an
            // adder on the table index.
            wire [LREGW+WINW-1:0] s1_idx;
            wire [LREGW+WINW-1:0] s2_idx;
            wire [LREGW+WINW-1:0] d_idx;
            wire s1_glob;
            wire s2_glob;
            wire d_glob;
            assign s1_glob = ~(|s1[LREGW-1:3]);
            assign s2_glob = ~(|s2[LREGW-1:3]);
            assign d_glob  = ~(|d[LREGW-1:3]);
            assign s1_idx = s1_glob
                ? {{WINW{1'b0}}, s1}
                : ({{WINW{1'b0}}, s1} + ({{LREGW{1'b0}}, cwp} << 3));
            assign s2_idx = s2_glob
                ? {{WINW{1'b0}}, s2}
                : ({{WINW{1'b0}}, s2} + ({{LREGW{1'b0}}, cwp} << 3));
            assign d_idx = d_glob
                ? {{WINW{1'b0}}, d}
                : ({{WINW{1'b0}}, d} + ({{LREGW{1'b0}}, cwp} << 3));

            wire [PREGW-1:0] t1;
            wire [PREGW-1:0] t2;
            assign t1 = map[s1_idx];
            assign t2 = map[s2_idx];

            wire [(g+1)*PREGW-1:0] c1;
            wire [(g+1)*PREGW-1:0] c2;
            assign c1[PREGW-1:0] = t1;
            assign c2[PREGW-1:0] = t2;
            for (h = 0; h < g; h = h + 1) begin : dep
                wire hit1;
                wire hit2;
                assign hit1 = req_valid[h] &
                    (ldst_flat[(h+1)*LREGW-1:h*LREGW] == s1);
                assign hit2 = req_valid[h] &
                    (ldst_flat[(h+1)*LREGW-1:h*LREGW] == s2);
                assign c1[(h+2)*PREGW-1:(h+1)*PREGW] = hit1
                    ? pdst_flat[(h+1)*PREGW-1:h*PREGW]
                    : c1[(h+1)*PREGW-1:h*PREGW];
                assign c2[(h+2)*PREGW-1:(h+1)*PREGW] = hit2
                    ? pdst_flat[(h+1)*PREGW-1:h*PREGW]
                    : c2[(h+1)*PREGW-1:h*PREGW];
            end
            assign psrc1_flat[(g+1)*PREGW-1:g*PREGW] =
                c1[(g+1)*PREGW-1:g*PREGW];
            assign psrc2_flat[(g+1)*PREGW-1:g*PREGW] =
                c2[(g+1)*PREGW-1:g*PREGW];

            always @(posedge clk) begin
                if (!rst) begin
                    if (req_valid[g])
                        map[d_idx] <=
                            pdst_flat[(g+1)*PREGW-1:g*PREGW];
                end
            end
        end
    endgenerate
endmodule
)HDL";

} // namespace ucx
