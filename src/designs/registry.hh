/**
 * @file
 * Registry of the synthetic µHDL processor components shipped with
 * the library.
 *
 * These stand in for the proprietary Leon3/PUMA/IVM/RAT sources the
 * paper measured: they exercise the same measurement pipeline
 * (parse, elaborate, synthesize, account) end to end, including
 * parameterized modules, generate loops, and repeated instantiation
 * — the ingredients of the Section 5.3 accounting ablation.
 */

#ifndef UCX_DESIGNS_REGISTRY_HH
#define UCX_DESIGNS_REGISTRY_HH

#include <string>
#include <vector>

#include "cache/artifact_cache.hh"
#include "exec/context.hh"
#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/metrics.hh"
#include "synth/pass.hh"

namespace ucx
{

/** One shipped synthetic component. */
struct ShippedDesign
{
    std::string name;        ///< Registry key, e.g. "alu".
    std::string top;         ///< Top module name.
    std::string description; ///< One-line description.
    std::string source;      ///< Full µHDL source text.

    /** @return The parsed design (parsing the embedded source). */
    Design load() const;
};

/** @return All shipped designs. */
const std::vector<ShippedDesign> &shippedDesigns();

/**
 * Look a shipped design up by name.
 *
 * @param name Registry key.
 * @return The design; throws UcxError for unknown names.
 */
const ShippedDesign &shippedDesign(const std::string &name);

/** One shipped design taken through the full flow. */
struct BuiltDesign
{
    std::string name;     ///< Registry key.
    Design design;        ///< Parsed modules.
    ElabResult elab;      ///< Elaborated RTL and instance tree.
    SynthMetrics metrics; ///< Synthesis metrics of the flat design.
};

/**
 * Parse, elaborate, and synthesize a chosen set of shipped designs.
 *
 * The whole request is one TaskGraph: per design an elaboration
 * node feeds one node per synthesis pass (wired by the passes'
 * declared dependencies), so independent passes of different
 * designs interleave across the context's pool. Results come back
 * in @p names order at any thread count; elaborations and per-pass
 * artifacts are memoized single-flight, so a cold build computes
 * each artifact exactly once no matter how many threads race. A
 * failure names the design and its top module, lowest failing index
 * first.
 *
 * @param names  Registry keys to build (unknown names throw).
 * @param ctx    Execution context.
 * @param cache  Memo store for elaborations and per-pass synthesis
 *               artifacts; null builds uncached. Safe to share
 *               across the pool (the cache is thread-safe).
 * @param config Synthesis pipeline configuration.
 * @return One entry per requested design, in @p names order.
 */
std::vector<BuiltDesign>
buildDesigns(const std::vector<std::string> &names,
             const ExecContext &ctx = ExecContext::serial(),
             ArtifactCache *cache = nullptr,
             const PassConfig &config = {});

/**
 * Parse, elaborate, and synthesize every shipped design — the
 * whole-registry case of buildDesigns.
 *
 * @param ctx    Execution context.
 * @param cache  Memo store for elaborations and per-pass synthesis
 *               artifacts; null builds uncached. Safe to share
 *               across the pool (the cache is thread-safe).
 * @param config Synthesis pipeline configuration.
 * @return One entry per shipped design, in registry order.
 */
std::vector<BuiltDesign>
buildAll(const ExecContext &ctx = ExecContext::serial(),
         ArtifactCache *cache = nullptr,
         const PassConfig &config = {});

} // namespace ucx

#endif // UCX_DESIGNS_REGISTRY_HH
