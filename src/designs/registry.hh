/**
 * @file
 * Registry of the synthetic µHDL processor components shipped with
 * the library.
 *
 * These stand in for the proprietary Leon3/PUMA/IVM/RAT sources the
 * paper measured: they exercise the same measurement pipeline
 * (parse, elaborate, synthesize, account) end to end, including
 * parameterized modules, generate loops, and repeated instantiation
 * — the ingredients of the Section 5.3 accounting ablation.
 */

#ifndef UCX_DESIGNS_REGISTRY_HH
#define UCX_DESIGNS_REGISTRY_HH

#include <string>
#include <vector>

#include "cache/artifact_cache.hh"
#include "exec/context.hh"
#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/metrics.hh"
#include "synth/pass.hh"

namespace ucx
{

/** One shipped synthetic component. */
struct ShippedDesign
{
    std::string name;        ///< Registry key, e.g. "alu".
    std::string top;         ///< Top module name.
    std::string description; ///< One-line description.
    std::string source;      ///< Full µHDL source text.

    /** @return The parsed design (parsing the embedded source). */
    Design load() const;
};

/** @return All shipped designs. */
const std::vector<ShippedDesign> &shippedDesigns();

/**
 * Look a shipped design up by name.
 *
 * @param name Registry key.
 * @return The design; throws UcxError for unknown names.
 */
const ShippedDesign &shippedDesign(const std::string &name);

/** One shipped design taken through the full flow. */
struct BuiltDesign
{
    std::string name;     ///< Registry key.
    Design design;        ///< Parsed modules.
    ElabResult elab;      ///< Elaborated RTL and instance tree.
    SynthMetrics metrics; ///< Synthesis metrics of the flat design.
};

/**
 * Parse, elaborate, and synthesize every shipped design.
 *
 * Each design is independent, so the per-design flow runs through
 * the context's pool; results come back in registry order at any
 * thread count. A failure names the design and its top module.
 *
 * @param ctx    Execution context.
 * @param cache  Memo store for elaborations and per-pass synthesis
 *               artifacts; null builds uncached. Safe to share
 *               across the pool (the cache is thread-safe).
 * @param config Synthesis pipeline configuration.
 * @return One entry per shipped design, in registry order.
 */
std::vector<BuiltDesign>
buildAll(const ExecContext &ctx = ExecContext::serial(),
         ArtifactCache *cache = nullptr,
         const PassConfig &config = {});

} // namespace ucx

#endif // UCX_DESIGNS_REGISTRY_HH
