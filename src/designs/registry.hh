/**
 * @file
 * Registry of the synthetic µHDL processor components shipped with
 * the library.
 *
 * These stand in for the proprietary Leon3/PUMA/IVM/RAT sources the
 * paper measured: they exercise the same measurement pipeline
 * (parse, elaborate, synthesize, account) end to end, including
 * parameterized modules, generate loops, and repeated instantiation
 * — the ingredients of the Section 5.3 accounting ablation.
 */

#ifndef UCX_DESIGNS_REGISTRY_HH
#define UCX_DESIGNS_REGISTRY_HH

#include <string>
#include <vector>

#include "hdl/design.hh"

namespace ucx
{

/** One shipped synthetic component. */
struct ShippedDesign
{
    std::string name;        ///< Registry key, e.g. "alu".
    std::string top;         ///< Top module name.
    std::string description; ///< One-line description.
    std::string source;      ///< Full µHDL source text.

    /** @return The parsed design (parsing the embedded source). */
    Design load() const;
};

/** @return All shipped designs. */
const std::vector<ShippedDesign> &shippedDesigns();

/**
 * Look a shipped design up by name.
 *
 * @param name Registry key.
 * @return The design; throws UcxError for unknown names.
 */
const ShippedDesign &shippedDesign(const std::string &name);

} // namespace ucx

#endif // UCX_DESIGNS_REGISTRY_HH
