/**
 * @file
 * Synthetic out-of-order backend components: issue queue, reorder
 * buffer, and load/store queue.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *issueQueueSource = R"HDL(
// Out-of-order issue queue: parallel wakeup on a writeback tag and
// priority selection of one ready entry per cycle.
module issue_queue #(parameter ENTRIES = 8, parameter TAGW = 6,
                     parameter OPW = 4) (
    input  wire            clk,
    input  wire            rst,
    // Allocate one new uop.
    input  wire            alloc_valid,
    input  wire [TAGW-1:0] alloc_dst,
    input  wire [TAGW-1:0] alloc_src1,
    input  wire [TAGW-1:0] alloc_src2,
    input  wire            alloc_src1_ready,
    input  wire            alloc_src2_ready,
    input  wire [OPW-1:0]  alloc_op,
    output wire            full,
    // Wakeup broadcast.
    input  wire            wb_valid,
    input  wire [TAGW-1:0] wb_tag,
    // Issue port.
    output reg             issue_valid,
    output reg  [TAGW-1:0] issue_dst,
    output reg  [OPW-1:0]  issue_op
);
    genvar g;
    integer i;

    wire [ENTRIES-1:0] ready;
    wire [ENTRIES-1:0] valid_vec;
    // Flattened per-entry payload for the selection mux.
    wire [ENTRIES*TAGW-1:0] dst_flat;
    wire [ENTRIES*OPW-1:0]  op_flat;

    // Allocation pointer: first free entry (priority encoder).
    reg [7:0] alloc_idx;
    reg       have_free;
    always @* begin
        alloc_idx = 8'd0;
        have_free = 1'b0;
        for (i = ENTRIES - 1; i >= 0; i = i - 1) begin
            if (!valid_vec[i]) begin
                alloc_idx = i;
                have_free = 1'b1;
            end
        end
    end
    assign full = !have_free;

    // Issue selection: oldest-index-first priority encoder.
    reg [7:0] sel_idx;
    reg       sel_any;
    always @* begin
        sel_idx = 8'd0;
        sel_any = 1'b0;
        for (i = ENTRIES - 1; i >= 0; i = i - 1) begin
            if (ready[i]) begin
                sel_idx = i;
                sel_any = 1'b1;
            end
        end
    end

    generate
        for (g = 0; g < ENTRIES; g = g + 1) begin : entry
            reg            vld;
            reg [TAGW-1:0] dst;
            reg [TAGW-1:0] src1;
            reg [TAGW-1:0] src2;
            reg            r1;
            reg            r2;
            reg [OPW-1:0]  op;

            wire wake1;
            wire wake2;
            assign wake1 = wb_valid & (src1 == wb_tag);
            assign wake2 = wb_valid & (src2 == wb_tag);
            assign ready[g] = vld & (r1 | wake1) & (r2 | wake2);
            assign valid_vec[g] = vld;
            assign dst_flat[(g+1)*TAGW-1:g*TAGW] = dst;
            assign op_flat[(g+1)*OPW-1:g*OPW] = op;

            always @(posedge clk) begin
                if (rst) begin
                    vld  <= 1'b0;
                    dst  <= {TAGW{1'b0}};
                    src1 <= {TAGW{1'b0}};
                    src2 <= {TAGW{1'b0}};
                    r1   <= 1'b0;
                    r2   <= 1'b0;
                    op   <= {OPW{1'b0}};
                end else begin
                    if (wake1)
                        r1 <= 1'b1;
                    if (wake2)
                        r2 <= 1'b1;
                    if (alloc_valid & have_free &
                        (alloc_idx == g)) begin
                        vld  <= 1'b1;
                        dst  <= alloc_dst;
                        src1 <= alloc_src1;
                        src2 <= alloc_src2;
                        r1   <= alloc_src1_ready;
                        r2   <= alloc_src2_ready;
                        op   <= alloc_op;
                    end
                    if (sel_any & (sel_idx == g))
                        vld <= 1'b0;
                end
            end
        end
    endgenerate

    // Issue-port muxes over the flattened payloads.
    wire [ENTRIES*TAGW-1:0] dst_shifted;
    wire [ENTRIES*OPW-1:0]  op_shifted;
    assign dst_shifted = dst_flat >> (sel_idx * TAGW);
    assign op_shifted  = op_flat >> (sel_idx * OPW);

    always @(posedge clk) begin
        if (rst) begin
            issue_valid <= 1'b0;
            issue_dst   <= {TAGW{1'b0}};
            issue_op    <= {OPW{1'b0}};
        end else begin
            issue_valid <= sel_any;
            issue_dst   <= dst_shifted[TAGW-1:0];
            issue_op    <= op_shifted[OPW-1:0];
        end
    end
endmodule
)HDL";

const char *robSource = R"HDL(
// Reorder buffer: circular allocate/retire pointers, payload RAMs,
// and per-entry completion bits.
module rob #(parameter ENTRIES = 16, parameter IDXW = 4,
             parameter PCW = 32, parameter TAGW = 6) (
    input  wire            clk,
    input  wire            rst,
    // Dispatch.
    input  wire            disp_valid,
    input  wire [PCW-1:0]  disp_pc,
    input  wire [TAGW-1:0] disp_dst,
    output wire            full,
    output wire [IDXW-1:0] disp_idx,
    // Completion broadcast.
    input  wire            comp_valid,
    input  wire [IDXW-1:0] comp_idx,
    // Retire port.
    output reg             retire_valid,
    output reg  [PCW-1:0]  retire_pc,
    output reg  [TAGW-1:0] retire_dst
);
    reg [IDXW-1:0] head;
    reg [IDXW-1:0] tail;
    reg [IDXW:0]   count;

    reg [PCW-1:0]  pcs  [0:(1<<IDXW)-1];
    reg [TAGW-1:0] dsts [0:(1<<IDXW)-1];
    reg [(1<<IDXW)-1:0] done;

    assign full = count == (1 << IDXW);
    assign disp_idx = tail;

    wire [(1<<IDXW)-1:0] done_at_head;
    assign done_at_head = done >> head;
    wire head_done;
    assign head_done = done_at_head[0];
    wire can_retire;
    assign can_retire = (count != 0) & head_done;

    always @(posedge clk) begin
        retire_valid <= 1'b0;
        if (rst) begin
            head  <= {IDXW{1'b0}};
            tail  <= {IDXW{1'b0}};
            count <= {(IDXW+1){1'b0}};
            done  <= {(1<<IDXW){1'b0}};
            retire_pc  <= {PCW{1'b0}};
            retire_dst <= {TAGW{1'b0}};
        end else begin
            if (disp_valid & !full) begin
                pcs[tail]  <= disp_pc;
                dsts[tail] <= disp_dst;
                done <= done &
                    ~({{((1<<IDXW)-1){1'b0}}, 1'b1} << tail);
                tail <= tail + 1'b1;
                if (!can_retire)
                    count <= count + 1'b1;
            end else begin
                if (can_retire)
                    count <= count - 1'b1;
            end
            if (comp_valid)
                done <= done |
                    ({{((1<<IDXW)-1){1'b0}}, 1'b1} << comp_idx);
            if (can_retire) begin
                retire_valid <= 1'b1;
                retire_pc    <= pcs[head];
                retire_dst   <= dsts[head];
                head <= head + 1'b1;
            end
        end
    end
endmodule
)HDL";

const char *lsqSource = R"HDL(
// Load/store queue: stores wait in order; loads search older stores
// for a matching address (store-to-load forwarding).
module lsq #(parameter ENTRIES = 8, parameter AW = 32,
             parameter DW = 32) (
    input  wire          clk,
    input  wire          rst,
    // Store enqueue.
    input  wire          st_valid,
    input  wire [AW-1:0] st_addr,
    input  wire [DW-1:0] st_data,
    output wire          st_full,
    // Store drain (commit to memory).
    input  wire          drain_en,
    output wire          drain_valid,
    output wire [AW-1:0] drain_addr,
    output wire [DW-1:0] drain_data,
    // Load lookup.
    input  wire          ld_valid,
    input  wire [AW-1:0] ld_addr,
    output wire          fwd_hit,
    output wire [DW-1:0] fwd_data
);
    genvar g;
    reg [3:0] head;
    reg [3:0] tail;
    reg [4:0] count;

    reg [AW-1:0] addrs [0:ENTRIES-1];
    reg [DW-1:0] datas [0:ENTRIES-1];
    reg [ENTRIES-1:0] vld;

    assign st_full = count == ENTRIES;
    assign drain_valid = count != 0;
    assign drain_addr = addrs[head];
    assign drain_data = datas[head];

    // Parallel address match against all valid stores.
    wire [ENTRIES-1:0] match;
    wire [ENTRIES*DW-1:0] data_flat;
    wire [ENTRIES*DW-1:0] chain_flat_lo;
    generate
        for (g = 0; g < ENTRIES; g = g + 1) begin : srch
            // Address compare per entry; reads the payload RAM via
            // a dedicated read port per entry position.
            assign match[g] = vld[g] & ld_valid &
                              (addrs[g] == ld_addr);
            assign data_flat[(g+1)*DW-1:g*DW] =
                datas[g] & {DW{match[g]}};
        end
    endgenerate

    assign fwd_hit = |match;

    // OR-combine the (at most one) matching entry's data.
    assign chain_flat_lo[DW-1:0] = data_flat[DW-1:0];
    generate
        for (g = 1; g < ENTRIES; g = g + 1) begin : fold
            assign chain_flat_lo[(g+1)*DW-1:g*DW] =
                chain_flat_lo[g*DW-1:(g-1)*DW] |
                data_flat[(g+1)*DW-1:g*DW];
        end
    endgenerate
    assign fwd_data = chain_flat_lo[ENTRIES*DW-1:(ENTRIES-1)*DW];

    always @(posedge clk) begin
        if (rst) begin
            head  <= 4'd0;
            tail  <= 4'd0;
            count <= 5'd0;
            vld   <= {ENTRIES{1'b0}};
        end else begin
            if (st_valid & !st_full) begin
                addrs[tail] <= st_addr;
                datas[tail] <= st_data;
                vld <= vld | ({{(ENTRIES-1){1'b0}}, 1'b1} << tail);
                if (tail == (ENTRIES - 1))
                    tail <= 4'd0;
                else
                    tail <= tail + 4'd1;
                if (!(drain_en & drain_valid))
                    count <= count + 5'd1;
            end else begin
                if (drain_en & drain_valid)
                    count <= count - 5'd1;
            end
            if (drain_en & drain_valid) begin
                vld <= vld & ~({{(ENTRIES-1){1'b0}}, 1'b1} << head);
                if (head == (ENTRIES - 1))
                    head <= 4'd0;
                else
                    head <= head + 4'd1;
            end
        end
    end
endmodule
)HDL";

} // namespace ucx
