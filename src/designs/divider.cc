/**
 * @file
 * Synthetic serial divider and a dual-issue scoreboard — additional
 * components for the measurement pipeline.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *dividerSource = R"HDL(
// Restoring serial divider: one quotient bit per cycle.
module div_unit #(parameter W = 16) (
    input  wire         clk,
    input  wire         rst,
    input  wire         start,
    input  wire [W-1:0] dividend,
    input  wire [W-1:0] divisor,
    output reg          done,
    output reg          div_by_zero,
    output reg  [W-1:0] quotient,
    output reg  [W-1:0] remainder
);
    localparam CNTW = 6;

    reg [W-1:0]   quo;
    reg [W:0]     rem;       // one extra bit for the trial subtract
    reg [W-1:0]   dvd;
    reg [W-1:0]   dvs;
    reg [CNTW-1:0] cycles;
    reg busy;

    wire [W:0] trial;
    assign trial = {rem[W-1:0], dvd[W-1]} - {1'b0, dvs};

    always @(posedge clk) begin
        done <= 1'b0;
        if (rst) begin
            quo    <= {W{1'b0}};
            rem    <= {(W+1){1'b0}};
            dvd    <= {W{1'b0}};
            dvs    <= {W{1'b0}};
            cycles <= {CNTW{1'b0}};
            busy   <= 1'b0;
            div_by_zero <= 1'b0;
            quotient  <= {W{1'b0}};
            remainder <= {W{1'b0}};
        end else begin
            if (start & !busy) begin
                if (divisor == {W{1'b0}}) begin
                    div_by_zero <= 1'b1;
                    done <= 1'b1;
                end else begin
                    div_by_zero <= 1'b0;
                    quo    <= {W{1'b0}};
                    rem    <= {(W+1){1'b0}};
                    dvd    <= dividend;
                    dvs    <= divisor;
                    cycles <= {CNTW{1'b0}};
                    busy   <= 1'b1;
                end
            end else begin
                if (busy) begin
                    if (trial[W]) begin
                        // Trial subtract went negative: restore.
                        rem <= {rem[W-1:0], dvd[W-1]};
                        quo <= {quo[W-2:0], 1'b0};
                    end else begin
                        rem <= trial;
                        quo <= {quo[W-2:0], 1'b1};
                    end
                    dvd <= dvd << 1;
                    cycles <= cycles + 1'b1;
                    if (cycles == (W - 1)) begin
                        busy <= 1'b0;
                        done <= 1'b1;
                        quotient <= trial[W]
                            ? {quo[W-2:0], 1'b0}
                            : {quo[W-2:0], 1'b1};
                        // Restored remainder includes the final
                        // shifted-in dividend bit.
                        remainder <= trial[W]
                            ? {rem[W-2:0], dvd[W-1]}
                            : trial[W-1:0];
                    end
                end
            end
        end
    end
endmodule
)HDL";

const char *scoreboardSource = R"HDL(
// Dual-issue in-order scoreboard: tracks which architectural
// registers have results in flight and stalls dependent issues.
module scoreboard #(parameter REGS = 32, parameter IDXW = 5,
                    parameter LATW = 3) (
    input  wire            clk,
    input  wire            rst,
    // Issue slot 0.
    input  wire            i0_valid,
    input  wire [IDXW-1:0] i0_rs1,
    input  wire [IDXW-1:0] i0_rs2,
    input  wire [IDXW-1:0] i0_rd,
    input  wire            i0_writes,
    input  wire [LATW-1:0] i0_latency,
    output wire            i0_stall,
    // Issue slot 1 (younger; also checks slot 0's destination).
    input  wire            i1_valid,
    input  wire [IDXW-1:0] i1_rs1,
    input  wire [IDXW-1:0] i1_rs2,
    input  wire [IDXW-1:0] i1_rd,
    input  wire            i1_writes,
    input  wire [LATW-1:0] i1_latency,
    output wire            i1_stall
);
    genvar g;

    // One down-counter per architectural register; non-zero means a
    // result is still in flight.
    wire [REGS-1:0] pending;

    wire grant0;
    wire grant1;
    // Helper wires: per-source pending checks.
    wire [REGS-1:0] p_shift_i0s1;
    wire [REGS-1:0] p_shift_i0s2;
    wire [REGS-1:0] p_shift_i1s1;
    wire [REGS-1:0] p_shift_i1s2;
    assign p_shift_i0s1 = pending >> i0_rs1;
    assign p_shift_i0s2 = pending >> i0_rs2;
    assign p_shift_i1s1 = pending >> i1_rs1;
    assign p_shift_i1s2 = pending >> i1_rs2;

    wire i0_dep;
    assign i0_dep = p_shift_i0s1[0] | p_shift_i0s2[0];
    wire i1_raw_dep;
    assign i1_raw_dep = p_shift_i1s1[0] | p_shift_i1s2[0];
    // Intra-bundle: slot 1 depends on slot 0's destination.
    wire i1_bundle_dep;
    assign i1_bundle_dep = grant0 & i0_writes &
        ((i1_rs1 == i0_rd) | (i1_rs2 == i0_rd));

    assign grant0 = i0_valid & !i0_dep;
    assign grant1 = i1_valid & !i1_raw_dep & !i1_bundle_dep &
                    grant0;
    assign i0_stall = i0_valid & !grant0;
    assign i1_stall = i1_valid & !grant1;

    generate
        for (g = 0; g < REGS; g = g + 1) begin : regtrack
            reg [LATW-1:0] cnt;
            assign pending[g] = |cnt;
            always @(posedge clk) begin
                if (rst) begin
                    cnt <= {LATW{1'b0}};
                end else begin
                    if (grant1 & i1_writes & (i1_rd == g))
                        cnt <= i1_latency;
                    else begin
                        if (grant0 & i0_writes & (i0_rd == g))
                            cnt <= i0_latency;
                        else begin
                            if (|cnt)
                                cnt <= cnt - 1'b1;
                        end
                    end
                end
            end
        end
    endgenerate
endmodule
)HDL";

} // namespace ucx
