/**
 * @file
 * Synthetic MMU-lite: a fully-associative TLB with round-robin
 * replacement, built from per-entry generate logic.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *mmuLiteSource = R"HDL(
// Fully-associative TLB. Each entry compares its stored virtual
// page number against the lookup in parallel; the matching entry's
// physical page number is collected with an OR tree (at most one
// entry matches by construction).
module mmu_lite #(parameter VPNW = 20, parameter PPNW = 18,
                  parameter ENTRIES = 8) (
    input  wire            clk,
    input  wire            rst,
    input  wire            lookup_valid,
    input  wire [VPNW-1:0] lookup_vpn,
    output wire            hit,
    output wire [PPNW-1:0] ppn,
    // Fill interface (on miss, from the table walker).
    input  wire            fill_valid,
    input  wire [VPNW-1:0] fill_vpn,
    input  wire [PPNW-1:0] fill_ppn
);
    genvar g;
    wire [ENTRIES-1:0] match;
    // Per-entry PPN, masked by its match bit, flattened.
    wire [ENTRIES*PPNW-1:0] masked_flat;
    // OR-accumulation chain, flattened; slot 0 is all zeros.
    wire [(ENTRIES+1)*PPNW-1:0] chain_flat;

    // Replacement pointer: round robin.
    reg [7:0] fill_ptr;
    always @(posedge clk) begin
        if (rst)
            fill_ptr <= 8'd0;
        else begin
            if (fill_valid) begin
                if (fill_ptr == (ENTRIES - 1))
                    fill_ptr <= 8'd0;
                else
                    fill_ptr <= fill_ptr + 8'd1;
            end
        end
    end

    assign chain_flat[PPNW-1:0] = {PPNW{1'b0}};

    generate
        for (g = 0; g < ENTRIES; g = g + 1) begin : entry
            reg [VPNW-1:0] vpn_tag;
            reg [PPNW-1:0] ppn_val;
            reg            vld;
            always @(posedge clk) begin
                if (rst) begin
                    vld <= 1'b0;
                    vpn_tag <= {VPNW{1'b0}};
                    ppn_val <= {PPNW{1'b0}};
                end else begin
                    if (fill_valid && (fill_ptr == g)) begin
                        vpn_tag <= fill_vpn;
                        ppn_val <= fill_ppn;
                        vld <= 1'b1;
                    end
                end
            end
            assign match[g] = vld & (vpn_tag == lookup_vpn) &
                              lookup_valid;
            assign masked_flat[(g+1)*PPNW-1:g*PPNW] =
                ppn_val & {PPNW{match[g]}};
            assign chain_flat[(g+2)*PPNW-1:(g+1)*PPNW] =
                chain_flat[(g+1)*PPNW-1:g*PPNW] |
                masked_flat[(g+1)*PPNW-1:g*PPNW];
        end
    endgenerate

    assign hit = |match;
    assign ppn = chain_flat[(ENTRIES+1)*PPNW-1:ENTRIES*PPNW];
endmodule
)HDL";

} // namespace ucx
