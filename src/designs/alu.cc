/**
 * @file
 * Synthetic ALU component: a parameterized arithmetic/logic unit
 * with flags, the smallest shipped design.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *aluSource = R"HDL(
// Parameterized ALU with zero/negative flags.
module alu #(parameter W = 16) (
    input  wire [W-1:0] a,
    input  wire [W-1:0] b,
    input  wire [3:0]   op,
    output reg  [W-1:0] y,
    output wire         zero,
    output wire         neg
);
    wire [W-1:0] sum;
    wire [W-1:0] diff;

    assign sum  = a + b;
    assign diff = a - b;

    always @* begin
        case (op)
            4'd0: y = sum;
            4'd1: y = diff;
            4'd2: y = a & b;
            4'd3: y = a | b;
            4'd4: y = a ^ b;
            4'd5: y = ~a;
            4'd6: y = a << 1;
            4'd7: y = a >> 1;
            4'd8: y = (a < b) ? {{(W-1){1'b0}}, 1'b1} : {W{1'b0}};
            default: y = a;
        endcase
    end

    assign zero = ~(|y);
    assign neg  = y[W-1];
endmodule
)HDL";

} // namespace ucx
