/**
 * @file
 * Synthetic 5-stage in-order pipeline (the Leon3-Pipeline analogue):
 * fetch, decode, execute, memory, writeback, with forwarding.
 * Instantiates the decoder, ALU, and register file components.
 */

#include "designs/sources.hh"

namespace ucx
{

const char *pipelineSource = R"HDL(
// 5-stage in-order pipeline core. Instruction and data memory are
// external ports (the cache components model them separately).
module pipeline #(parameter W = 32, parameter AW = 5) (
    input  wire          clk,
    input  wire          rst,
    // Instruction fetch interface.
    output wire [W-1:0]  imem_addr,
    input  wire [W-1:0]  imem_data,
    // Data memory interface.
    output wire [W-1:0]  dmem_addr,
    output wire [W-1:0]  dmem_wdata,
    output wire          dmem_we,
    input  wire [W-1:0]  dmem_rdata,
    // Retired-instruction trace.
    output reg  [W-1:0]  retire_pc,
    output reg           retire_valid
);
    // ------------------------------------------------ fetch
    reg [W-1:0] pc;
    wire [W-1:0] pc_next;
    wire         take_branch;
    wire [W-1:0] branch_target;

    assign imem_addr = pc;
    assign pc_next = take_branch ? branch_target : (pc + 4);

    always @(posedge clk) begin
        if (rst)
            pc <= {W{1'b0}};
        else
            pc <= pc_next;
    end

    // IF/ID pipeline registers.
    reg [W-1:0] ifid_instr;
    reg [W-1:0] ifid_pc;
    reg         ifid_valid;
    always @(posedge clk) begin
        if (rst | take_branch) begin
            ifid_instr <= {W{1'b0}};
            ifid_pc    <= {W{1'b0}};
            ifid_valid <= 1'b0;
        end else begin
            ifid_instr <= imem_data;
            ifid_pc    <= pc;
            ifid_valid <= 1'b1;
        end
    end

    // ------------------------------------------------ decode
    wire [3:0]  dec_alu_op;
    wire [4:0]  dec_rd;
    wire [4:0]  dec_rs1;
    wire [4:0]  dec_rs2;
    wire [15:0] dec_imm;
    wire        dec_uses_imm;
    wire        dec_is_load;
    wire        dec_is_store;
    wire        dec_is_branch;
    wire        dec_writes_rd;

    decoder #(.W(W)) u_decoder (
        .instr(ifid_instr),
        .alu_op(dec_alu_op),
        .rd(dec_rd),
        .rs1(dec_rs1),
        .rs2(dec_rs2),
        .imm(dec_imm),
        .uses_imm(dec_uses_imm),
        .is_load(dec_is_load),
        .is_store(dec_is_store),
        .is_branch(dec_is_branch),
        .writes_rd(dec_writes_rd)
    );

    wire [W-1:0] rf_rdata1;
    wire [W-1:0] rf_rdata2;
    wire         wb_we;
    wire [4:0]   wb_rd;
    wire [W-1:0] wb_value;

    regfile #(.W(W), .AW(AW)) u_regfile (
        .clk(clk),
        .we(wb_we),
        .waddr(wb_rd),
        .wdata(wb_value),
        .raddr0(dec_rs1),
        .raddr1(dec_rs2),
        .rdata0(rf_rdata1),
        .rdata1(rf_rdata2)
    );

    // ID/EX pipeline registers.
    reg [W-1:0] idex_op1;
    reg [W-1:0] idex_op2;
    reg [W-1:0] idex_store_data;
    reg [3:0]   idex_alu_op;
    reg [4:0]   idex_rd;
    reg [4:0]   idex_rs1;
    reg [4:0]   idex_rs2;
    reg         idex_is_load;
    reg         idex_is_store;
    reg         idex_is_branch;
    reg         idex_writes_rd;
    reg         idex_valid;
    reg [W-1:0] idex_pc;
    reg [W-1:0] idex_imm_ext;

    wire [W-1:0] imm_ext;
    assign imm_ext = {{(W-16){dec_imm[15]}}, dec_imm};

    always @(posedge clk) begin
        if (rst | take_branch) begin
            idex_valid     <= 1'b0;
            idex_alu_op    <= 4'd0;
            idex_rd        <= 5'd0;
            idex_rs1       <= 5'd0;
            idex_rs2       <= 5'd0;
            idex_is_load   <= 1'b0;
            idex_is_store  <= 1'b0;
            idex_is_branch <= 1'b0;
            idex_writes_rd <= 1'b0;
            idex_op1       <= {W{1'b0}};
            idex_op2       <= {W{1'b0}};
            idex_store_data <= {W{1'b0}};
            idex_pc        <= {W{1'b0}};
            idex_imm_ext   <= {W{1'b0}};
        end else begin
            idex_valid     <= ifid_valid;
            idex_alu_op    <= dec_alu_op;
            idex_rd        <= dec_rd;
            idex_rs1       <= dec_rs1;
            idex_rs2       <= dec_rs2;
            idex_is_load   <= dec_is_load;
            idex_is_store  <= dec_is_store;
            idex_is_branch <= dec_is_branch;
            idex_writes_rd <= dec_writes_rd & ifid_valid;
            idex_op1       <= rf_rdata1;
            idex_op2       <= dec_uses_imm ? imm_ext : rf_rdata2;
            idex_store_data <= rf_rdata2;
            idex_pc        <= ifid_pc;
            idex_imm_ext   <= imm_ext;
        end
    end

    // ------------------------------------------------ execute
    // Forwarding from MEM and WB stages.
    reg [W-1:0] exmem_result;
    reg [4:0]   exmem_rd;
    reg         exmem_writes_rd;

    wire fwd1_mem;
    wire fwd1_wb;
    wire fwd2_mem;
    wire fwd2_wb;
    assign fwd1_mem = exmem_writes_rd & (exmem_rd == idex_rs1);
    assign fwd1_wb  = wb_we & (wb_rd == idex_rs1);
    assign fwd2_mem = exmem_writes_rd & (exmem_rd == idex_rs2);
    assign fwd2_wb  = wb_we & (wb_rd == idex_rs2);

    wire [W-1:0] alu_in1;
    wire [W-1:0] alu_in2;
    assign alu_in1 = fwd1_mem ? exmem_result :
                     (fwd1_wb ? wb_value : idex_op1);
    assign alu_in2 = fwd2_mem ? exmem_result :
                     (fwd2_wb ? wb_value : idex_op2);

    wire [W-1:0] alu_y;
    wire         alu_zero;
    wire         alu_neg;
    alu #(.W(W)) u_alu (
        .a(alu_in1),
        .b(alu_in2),
        .op(idex_alu_op),
        .y(alu_y),
        .zero(alu_zero),
        .neg(alu_neg)
    );

    assign take_branch = idex_valid & idex_is_branch & alu_zero;
    assign branch_target = idex_pc + (idex_imm_ext << 2);

    // EX/MEM pipeline registers.
    reg [W-1:0] exmem_store_data;
    reg         exmem_is_load;
    reg         exmem_is_store;
    reg         exmem_valid;
    reg [W-1:0] exmem_pc;
    always @(posedge clk) begin
        if (rst) begin
            exmem_result     <= {W{1'b0}};
            exmem_store_data <= {W{1'b0}};
            exmem_rd         <= 5'd0;
            exmem_writes_rd  <= 1'b0;
            exmem_is_load    <= 1'b0;
            exmem_is_store   <= 1'b0;
            exmem_valid      <= 1'b0;
            exmem_pc         <= {W{1'b0}};
        end else begin
            exmem_result     <= alu_y;
            exmem_store_data <= idex_store_data;
            exmem_rd         <= idex_rd;
            exmem_writes_rd  <= idex_writes_rd;
            exmem_is_load    <= idex_is_load & idex_valid;
            exmem_is_store   <= idex_is_store & idex_valid;
            exmem_valid      <= idex_valid;
            exmem_pc         <= idex_pc;
        end
    end

    // ------------------------------------------------ memory
    assign dmem_addr  = exmem_result;
    assign dmem_wdata = exmem_store_data;
    assign dmem_we    = exmem_is_store;

    // MEM/WB pipeline registers.
    reg [W-1:0] memwb_value;
    reg [4:0]   memwb_rd;
    reg         memwb_we;
    reg         memwb_valid;
    reg [W-1:0] memwb_pc;
    always @(posedge clk) begin
        if (rst) begin
            memwb_value <= {W{1'b0}};
            memwb_rd    <= 5'd0;
            memwb_we    <= 1'b0;
            memwb_valid <= 1'b0;
            memwb_pc    <= {W{1'b0}};
        end else begin
            memwb_value <= exmem_is_load ? dmem_rdata : exmem_result;
            memwb_rd    <= exmem_rd;
            memwb_we    <= exmem_writes_rd;
            memwb_valid <= exmem_valid;
            memwb_pc    <= exmem_pc;
        end
    end

    // ------------------------------------------------ writeback
    assign wb_we    = memwb_we;
    assign wb_rd    = memwb_rd;
    assign wb_value = memwb_value;

    always @(posedge clk) begin
        if (rst) begin
            retire_pc    <= {W{1'b0}};
            retire_valid <= 1'b0;
        end else begin
            retire_pc    <= memwb_pc;
            retire_valid <= memwb_valid;
        end
    end
endmodule
)HDL";

} // namespace ucx
