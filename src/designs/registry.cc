#include "designs/registry.hh"

#include "designs/sources.hh"
#include "util/error.hh"

namespace ucx
{

Design
ShippedDesign::load() const
{
    Design design;
    design.addSource(source, name + ".v");
    return design;
}

const std::vector<ShippedDesign> &
shippedDesigns()
{
    static const std::vector<ShippedDesign> designs = [] {
        auto cat = [](std::initializer_list<const char *> parts) {
            std::string out;
            for (const char *p : parts)
                out += p;
            return out;
        };
        std::vector<ShippedDesign> d;
        d.push_back({"alu", "alu",
                     "Parameterized ALU with flags",
                     aluSource});
        d.push_back({"regfile", "regfile",
                     "Two-read one-write register file with bypass",
                     regfileSource});
        d.push_back({"decoder", "decoder",
                     "RISC instruction decoder",
                     decoderSource});
        d.push_back({"pipeline", "pipeline",
                     "5-stage in-order pipeline (Leon3-Pipeline "
                     "analogue)",
                     cat({aluSource, regfileSource, decoderSource,
                          pipelineSource})});
        d.push_back({"fetch", "fetch",
                     "Fetch unit with gshare predictor and BTB",
                     fetchSource});
        d.push_back({"cache_ctrl", "cache_ctrl",
                     "Direct-mapped write-through cache controller",
                     cacheCtrlSource});
        d.push_back({"memctrl", "memctrl",
                     "SDRAM-style memory controller",
                     memCtrlSource});
        d.push_back({"mmu_lite", "mmu_lite",
                     "Fully-associative TLB (MMU-lite)",
                     mmuLiteSource});
        d.push_back({"issue_queue", "issue_queue",
                     "Out-of-order issue queue with wakeup/select",
                     issueQueueSource});
        d.push_back({"rob", "rob",
                     "Reorder buffer with completion tracking",
                     robSource});
        d.push_back({"lsq", "lsq",
                     "Load/store queue with forwarding",
                     lsqSource});
        d.push_back({"exec_cluster", "exec_cluster",
                     "Multi-lane execute cluster with bypass network",
                     cat({aluSource, execClusterSource})});
        d.push_back({"rat_standard", "rat_standard",
                     "Standard 4-wide register alias table",
                     ratStandardSource});
        d.push_back({"rat_sliding", "rat_sliding",
                     "Sliding-register-window alias table",
                     ratSlidingSource});
        d.push_back({"serial_mul", "serial_mul",
                     "Sequential shift-add multiplier",
                     serialMulSource});
        d.push_back({"div_unit", "div_unit",
                     "Restoring serial divider",
                     dividerSource});
        d.push_back({"scoreboard", "scoreboard",
                     "Dual-issue in-order scoreboard",
                     scoreboardSource});
        return d;
    }();
    return designs;
}

const ShippedDesign &
shippedDesign(const std::string &name)
{
    for (const auto &d : shippedDesigns())
        if (d.name == name)
            return d;
    fatal("unknown shipped design '" + name + "'");
}

namespace
{

/** State one design's graph nodes hand to each other. */
struct DesignState
{
    Design design;
    std::shared_ptr<const ElabResult> elab;
    std::shared_ptr<PipelineContext> pctx;
};

} // namespace

std::vector<BuiltDesign>
buildDesigns(const std::vector<std::string> &names,
             const ExecContext &ctx, ArtifactCache *cache,
             const PassConfig &config)
{
    // Sources are parsed eagerly: the synthesis cache keys hash the
    // parsed source text, and the whole per-design pipeline (keys
    // included) must exist before its nodes can be submitted.
    // Parsing is a sliver of the per-design cost; everything
    // downstream of it runs as graph nodes.
    std::vector<const ShippedDesign *> picked;
    picked.reserve(names.size());
    for (const std::string &name : names)
        picked.push_back(&shippedDesign(name));

    TaskGraph graph(ctx);
    std::vector<Future<BuiltDesign>> futures;
    futures.reserve(picked.size());
    for (const ShippedDesign *sd : picked) {
        auto st = std::make_shared<DesignState>();
        try {
            st->design = sd->load();
        } catch (const UcxError &e) {
            throw UcxError("design '" + sd->name + "' (top '" +
                           sd->top + "'): " + e.what());
        }
        st->pctx = std::make_shared<PipelineContext>();
        st->pctx->config = config;
        PipelineRun run;
        if (cache) {
            run.cache = cache;
            run.base = synthCacheKey(
                elabCacheKey(st->design, sd->top, {}), config);
        }

        // Node 1: elaborate (memoized, single-flight) and point the
        // pipeline context at the shared RTL, which `st` keeps
        // alive for the downstream pass nodes.
        Future<void> elab = graph.submit(
            [st, sd, cache] {
                st->elab =
                    elaborateShared(st->design, sd->top, {}, cache);
                st->pctx->rtl = &st->elab->rtl;
            },
            "design." + sd->name + ".elab");

        // Nodes 2..n: one node per pass, wired by declared deps, so
        // passes of *different* designs interleave across cores.
        std::vector<TaskHandle> passes = submitPasses(
            graph, elab.handle(), st->pctx, passListFor(config), run);

        // Final node: assemble the BuiltDesign once every pass of
        // this design landed.
        std::vector<TaskHandle> deps = std::move(passes);
        deps.insert(deps.begin(), elab.handle());
        futures.push_back(graph.submitAfter(
            deps,
            [st, sd] {
                BuiltDesign built;
                built.name = sd->name;
                built.design = st->design;
                built.elab = *st->elab;
                ensure(st->pctx->metrics != nullptr,
                       "pipeline finished without a metrics "
                       "artifact");
                built.metrics = *st->pctx->metrics;
                return built;
            },
            "design." + sd->name + ".assemble"));
    }

    // Join in registry order: errors surface for the lowest failing
    // design index, like the serial loop, and any error of a
    // design's pipeline is wrapped with its name here.
    std::vector<BuiltDesign> out;
    out.reserve(futures.size());
    for (size_t i = 0; i < futures.size(); ++i) {
        try {
            out.push_back(futures[i].take());
        } catch (const UcxError &e) {
            throw UcxError("design '" + picked[i]->name +
                           "' (top '" + picked[i]->top +
                           "'): " + e.what());
        }
    }
    return out;
}

std::vector<BuiltDesign>
buildAll(const ExecContext &ctx, ArtifactCache *cache,
         const PassConfig &config)
{
    std::vector<std::string> names;
    const auto &shipped = shippedDesigns();
    names.reserve(shipped.size());
    for (const ShippedDesign &sd : shipped)
        names.push_back(sd.name);
    return buildDesigns(names, ctx, cache, config);
}

} // namespace ucx
