#include "designs/registry.hh"

#include "designs/sources.hh"
#include "util/error.hh"

namespace ucx
{

Design
ShippedDesign::load() const
{
    Design design;
    design.addSource(source, name + ".v");
    return design;
}

const std::vector<ShippedDesign> &
shippedDesigns()
{
    static const std::vector<ShippedDesign> designs = [] {
        auto cat = [](std::initializer_list<const char *> parts) {
            std::string out;
            for (const char *p : parts)
                out += p;
            return out;
        };
        std::vector<ShippedDesign> d;
        d.push_back({"alu", "alu",
                     "Parameterized ALU with flags",
                     aluSource});
        d.push_back({"regfile", "regfile",
                     "Two-read one-write register file with bypass",
                     regfileSource});
        d.push_back({"decoder", "decoder",
                     "RISC instruction decoder",
                     decoderSource});
        d.push_back({"pipeline", "pipeline",
                     "5-stage in-order pipeline (Leon3-Pipeline "
                     "analogue)",
                     cat({aluSource, regfileSource, decoderSource,
                          pipelineSource})});
        d.push_back({"fetch", "fetch",
                     "Fetch unit with gshare predictor and BTB",
                     fetchSource});
        d.push_back({"cache_ctrl", "cache_ctrl",
                     "Direct-mapped write-through cache controller",
                     cacheCtrlSource});
        d.push_back({"memctrl", "memctrl",
                     "SDRAM-style memory controller",
                     memCtrlSource});
        d.push_back({"mmu_lite", "mmu_lite",
                     "Fully-associative TLB (MMU-lite)",
                     mmuLiteSource});
        d.push_back({"issue_queue", "issue_queue",
                     "Out-of-order issue queue with wakeup/select",
                     issueQueueSource});
        d.push_back({"rob", "rob",
                     "Reorder buffer with completion tracking",
                     robSource});
        d.push_back({"lsq", "lsq",
                     "Load/store queue with forwarding",
                     lsqSource});
        d.push_back({"exec_cluster", "exec_cluster",
                     "Multi-lane execute cluster with bypass network",
                     cat({aluSource, execClusterSource})});
        d.push_back({"rat_standard", "rat_standard",
                     "Standard 4-wide register alias table",
                     ratStandardSource});
        d.push_back({"rat_sliding", "rat_sliding",
                     "Sliding-register-window alias table",
                     ratSlidingSource});
        d.push_back({"serial_mul", "serial_mul",
                     "Sequential shift-add multiplier",
                     serialMulSource});
        d.push_back({"div_unit", "div_unit",
                     "Restoring serial divider",
                     dividerSource});
        d.push_back({"scoreboard", "scoreboard",
                     "Dual-issue in-order scoreboard",
                     scoreboardSource});
        return d;
    }();
    return designs;
}

const ShippedDesign &
shippedDesign(const std::string &name)
{
    for (const auto &d : shippedDesigns())
        if (d.name == name)
            return d;
    fatal("unknown shipped design '" + name + "'");
}

std::vector<BuiltDesign>
buildAll(const ExecContext &ctx, ArtifactCache *cache,
         const PassConfig &config)
{
    const auto &shipped = shippedDesigns();
    return ctx.parallelMap(shipped.size(), [&](size_t i) {
        const ShippedDesign &sd = shipped[i];
        try {
            BuiltDesign built;
            built.name = sd.name;
            built.design = sd.load();
            built.elab =
                *elaborateShared(built.design, sd.top, {}, cache);
            PipelineRun run;
            if (cache) {
                run.cache = cache;
                run.base = synthCacheKey(
                    elabCacheKey(built.design, sd.top, {}), config);
            }
            built.metrics = synthesizeWithPasses(built.elab.rtl,
                                                 config, run);
            return built;
        } catch (const UcxError &e) {
            throw UcxError("design '" + sd.name + "' (top '" +
                           sd.top + "'): " + e.what());
        }
    });
}

} // namespace ucx
