/**
 * @file
 * Embedded µHDL source texts of the shipped synthetic components.
 * One translation unit per component keeps the sources reviewable.
 */

#ifndef UCX_DESIGNS_SOURCES_HH
#define UCX_DESIGNS_SOURCES_HH

namespace ucx
{

extern const char *aluSource;          ///< Parameterized ALU.
extern const char *regfileSource;      ///< Multi-port register file.
extern const char *decoderSource;      ///< Instruction decoder.
extern const char *pipelineSource;     ///< 5-stage in-order pipeline.
extern const char *fetchSource;        ///< Fetch unit with gshare.
extern const char *cacheCtrlSource;    ///< Direct-mapped cache ctrl.
extern const char *memCtrlSource;      ///< Memory controller FSM.
extern const char *mmuLiteSource;      ///< TLB-based MMU-lite.
extern const char *issueQueueSource;   ///< OoO issue queue.
extern const char *robSource;          ///< Reorder buffer.
extern const char *lsqSource;          ///< Load/store queue.
extern const char *execClusterSource;  ///< Multi-lane execute cluster.
extern const char *ratStandardSource;  ///< Standard 4-wide RAT.
extern const char *ratSlidingSource;   ///< Sliding-window RAT.
extern const char *serialMulSource;    ///< Sequential multiplier.
extern const char *dividerSource;      ///< Restoring serial divider.
extern const char *scoreboardSource;   ///< Dual-issue scoreboard.

} // namespace ucx

#endif // UCX_DESIGNS_SOURCES_HH
