#include "core/dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace ucx
{

void
Dataset::add(Component component)
{
    require(component.effort > 0.0,
            "component '" + component.fullName() +
                "' needs effort > 0");
    require(!component.project.empty(), "component needs a project");
    require(!component.name.empty(), "component needs a name");
    components_.push_back(std::move(component));
}

std::vector<std::string>
Dataset::projects() const
{
    std::vector<std::string> names;
    for (const auto &c : components_) {
        if (std::find(names.begin(), names.end(), c.project) ==
            names.end()) {
            names.push_back(c.project);
        }
    }
    return names;
}

Dataset
Dataset::filterProject(const std::string &project) const
{
    Dataset out;
    for (const auto &c : components_)
        if (c.project == project)
            out.add(c);
    return out;
}

namespace
{

bool
rowUsable(const Component &c, const std::vector<Metric> &metrics)
{
    double sum = 0.0;
    for (Metric m : metrics)
        sum += c.metrics[static_cast<size_t>(m)];
    return sum > 0.0;
}

} // namespace

std::vector<Component>
Dataset::usableComponents(const std::vector<Metric> &metrics,
                          ZeroPolicy policy) const
{
    require(!metrics.empty(), "need at least one metric");
    std::vector<Component> out;
    for (const std::string &proj : projects()) {
        for (const auto &c : components_) {
            if (c.project != proj)
                continue;
            if (!rowUsable(c, metrics)) {
                switch (policy) {
                  case ZeroPolicy::Drop:
                    continue;
                  case ZeroPolicy::Error:
                    fatal("component '" + c.fullName() +
                          "' has all-zero metrics for this subset");
                  case ZeroPolicy::ClampToOne: {
                    Component clamped = c;
                    for (Metric m : metrics) {
                        double &v =
                            clamped
                                .metrics[static_cast<size_t>(m)];
                        if (v <= 0.0)
                            v = 1.0;
                    }
                    out.push_back(std::move(clamped));
                    continue;
                  }
                }
            }
            out.push_back(c);
        }
    }
    return out;
}

NlmeData
Dataset::toNlmeData(const std::vector<Metric> &metrics,
                    ZeroPolicy policy) const
{
    std::vector<Component> usable = usableComponents(metrics, policy);
    require(!usable.empty(), "no usable components for metric subset");

    NlmeData data;
    for (const std::string &proj : projects()) {
        std::vector<std::vector<double>> rows;
        std::vector<double> y;
        for (const auto &c : usable) {
            if (c.project != proj)
                continue;
            rows.push_back(selectMetrics(c.metrics, metrics));
            y.push_back(std::log(c.effort));
        }
        if (rows.empty())
            continue;
        NlmeGroup group;
        group.name = proj;
        group.y = std::move(y);
        group.x = Matrix::fromRows(rows);
        data.groups.push_back(std::move(group));
    }
    return data;
}

} // namespace ucx
