/**
 * @file
 * Estimator search: rank all single-metric estimators and all
 * two-metric combinations by accuracy, the experiment behind paper
 * Table 4 and the DEE1 selection of Section 5.1.1.
 */

#ifndef UCX_CORE_SEARCH_HH
#define UCX_CORE_SEARCH_HH

#include <vector>

#include "core/estimator.hh"
#include "exec/context.hh"

namespace ucx
{

/** One ranked estimator candidate. */
struct RankedEstimator
{
    std::vector<Metric> metrics; ///< Metric subset.
    FittedEstimator fit;         ///< Its calibration on the dataset.
};

/**
 * Fit every single-metric estimator and sort by ascending sigma_eps.
 *
 * @param dataset Training components.
 * @param mode    Fit mode.
 * @param ctx     Execution context; candidate fits run through its
 *                pool (the ranking is thread-count independent).
 * @return One entry per metric, most accurate first.
 */
std::vector<RankedEstimator> rankSingleMetrics(
    const Dataset &dataset, FitMode mode = FitMode::MixedEffects,
    const ExecContext &ctx = ExecContext::serial());

/**
 * Fit every unordered pair of distinct metrics and sort by ascending
 * sigma_eps. With 11 metrics this fits 55 models; the paper found
 * Stmts+Nets and Stmts+FanInLC tied at the top and chose the latter
 * as DEE1.
 *
 * @param dataset Training components.
 * @param mode    Fit mode.
 * @param ctx     Execution context; the 55 candidate fits run
 *                through its pool.
 * @return One entry per pair, most accurate first.
 */
std::vector<RankedEstimator> rankMetricPairs(
    const Dataset &dataset, FitMode mode = FitMode::MixedEffects,
    const ExecContext &ctx = ExecContext::serial());

} // namespace ucx

#endif // UCX_CORE_SEARCH_HH
