/**
 * @file
 * The design metrics of paper Table 3.
 *
 * Each metric is one candidate design-effort estimator input. The
 * enum order matches the estimator columns of paper Table 4.
 */

#ifndef UCX_CORE_METRIC_HH
#define UCX_CORE_METRIC_HH

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace ucx
{

/** Identifier of one measurable design metric (paper Table 3). */
enum class Metric : size_t
{
    Stmts = 0, ///< Number of statements in the HDL code.
    LoC,       ///< Number of lines in the HDL code.
    FanInLC,   ///< Total inputs of all logic cones.
    Nets,      ///< Number of nets.
    Freq,      ///< Max frequency (MHz) on the FPGA target.
    AreaL,     ///< Logic area in um^2.
    PowerD,    ///< Dynamic power in mW.
    PowerS,    ///< Static power in uW.
    AreaS,     ///< Storage area in um^2.
    Cells,     ///< Number of standard cells.
    FFs,       ///< Number of flip-flops.
};

/** Number of distinct metrics. */
inline constexpr size_t numMetrics = 11;

/** All metrics, in Table 4 column order. */
const std::array<Metric, numMetrics> &allMetrics();

/** @return The short name used in the paper's tables (e.g. "LoC"). */
const std::string &metricName(Metric metric);

/** @return A one-line description matching paper Table 3. */
const std::string &metricDescription(Metric metric);

/**
 * @return The tool the paper used to obtain the metric ("Synplify
 *         Pro", "Design Comp", or "-" for source metrics); in this
 *         reproduction the corresponding ucx_hdl/ucx_synth pass.
 */
const std::string &metricTool(Metric metric);

/**
 * Look a metric up by its table name (case-insensitive).
 *
 * @param name Name such as "FanInLC".
 * @return The metric; throws UcxError for unknown names.
 */
Metric metricFromName(const std::string &name);

/** Fixed-size array of all metric values for one component. */
using MetricValues = std::array<double, numMetrics>;

/**
 * Select a subset of values in the order given by @p metrics.
 *
 * @param values  Full metric array.
 * @param metrics Metrics to extract.
 * @return The selected values.
 */
std::vector<double> selectMetrics(const MetricValues &values,
                                  const std::vector<Metric> &metrics);

} // namespace ucx

#endif // UCX_CORE_METRIC_HH
