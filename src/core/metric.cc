#include "core/metric.hh"

#include "util/error.hh"
#include "util/str.hh"

namespace ucx
{

namespace
{

struct MetricInfo
{
    std::string name;
    std::string description;
    std::string tool;
};

const std::array<MetricInfo, numMetrics> &
infos()
{
    static const std::array<MetricInfo, numMetrics> table = {{
        {"Stmts", "Number of statements in the HDL code",
         "ucx_hdl source metrics (paper: -)"},
        {"LoC", "Number of lines in the HDL code",
         "ucx_hdl source metrics (paper: -)"},
        {"FanInLC", "Total number of inputs of all logic cones",
         "ucx_synth LUT mapper (paper: Synplify Pro)"},
        {"Nets", "Number of nets",
         "ucx_synth netlist (paper: Design Comp)"},
        {"Freq", "Frequency for 90nm Stratix-II EP2S90 FPGA (MHz)",
         "ucx_synth timing (paper: Synplify Pro)"},
        {"AreaL", "Logic area in um^2",
         "ucx_synth area model (paper: Design Comp)"},
        {"PowerD", "Dynamic power in mW",
         "ucx_synth power model (paper: Design Comp)"},
        {"PowerS", "Static power in uW",
         "ucx_synth power model (paper: Design Comp)"},
        {"AreaS", "Storage area in um^2",
         "ucx_synth area model (paper: Design Comp)"},
        {"Cells", "Number of standard cells",
         "ucx_synth mapper (paper: Design Comp)"},
        {"FFs", "Number of flip-flops",
         "ucx_synth netlist (paper: Synplify Pro)"},
    }};
    return table;
}

} // namespace

const std::array<Metric, numMetrics> &
allMetrics()
{
    static const std::array<Metric, numMetrics> all = {
        Metric::Stmts,  Metric::LoC,    Metric::FanInLC, Metric::Nets,
        Metric::Freq,   Metric::AreaL,  Metric::PowerD,  Metric::PowerS,
        Metric::AreaS,  Metric::Cells,  Metric::FFs,
    };
    return all;
}

const std::string &
metricName(Metric metric)
{
    return infos()[static_cast<size_t>(metric)].name;
}

const std::string &
metricDescription(Metric metric)
{
    return infos()[static_cast<size_t>(metric)].description;
}

const std::string &
metricTool(Metric metric)
{
    return infos()[static_cast<size_t>(metric)].tool;
}

Metric
metricFromName(const std::string &name)
{
    std::string needle = toLower(name);
    for (Metric m : allMetrics()) {
        if (toLower(metricName(m)) == needle)
            return m;
    }
    fatal("unknown metric name: " + name);
}

std::vector<double>
selectMetrics(const MetricValues &values,
              const std::vector<Metric> &metrics)
{
    std::vector<double> out;
    out.reserve(metrics.size());
    for (Metric m : metrics)
        out.push_back(values[static_cast<size_t>(m)]);
    return out;
}

} // namespace ucx
