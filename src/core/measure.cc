#include "core/measure.hh"

#include <algorithm>

#include "hdl/const_eval.hh"
#include "hdl/source_metrics.hh"
#include "synth/metrics.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ucx
{

namespace
{

/**
 * Elaborate one module as its own top with given parameters,
 * black-boxing its children so only the module's own logic is
 * measured (the count-once rule).
 */
ElabResult
elabModuleAsTop(const Design &design, const std::string &module_name,
                const std::map<std::string, int64_t> &params)
{
    ElabOptions opts;
    opts.topParams = params;
    opts.blackBoxChildren = true;
    return elaborate(design, module_name, opts);
}

void
accumulate(MetricValues &into, const SynthMetrics &m, bool first)
{
    auto idx = [](Metric metric) {
        return static_cast<size_t>(metric);
    };
    into[idx(Metric::FanInLC)] += static_cast<double>(m.fanInLC);
    into[idx(Metric::Nets)] += static_cast<double>(m.nets);
    into[idx(Metric::Cells)] += static_cast<double>(m.cells);
    into[idx(Metric::FFs)] += static_cast<double>(m.ffs);
    into[idx(Metric::AreaL)] += m.areaLogicUm2;
    into[idx(Metric::AreaS)] += m.areaStorageUm2;
    into[idx(Metric::PowerD)] += m.powerDynamicMw;
    into[idx(Metric::PowerS)] += m.powerStaticUw;
    // Frequency is limited by the slowest structure, not summed.
    double &freq = into[idx(Metric::Freq)];
    if (first || m.freqMHz < freq)
        freq = m.freqMHz;
}

} // namespace

std::map<std::string, int64_t>
minimizeParameters(const Design &design, const std::string &module_name)
{
    const Module &mod = design.module(module_name);

    // Defaults evaluated in declaration order.
    std::map<std::string, int64_t> defaults;
    {
        ConstEnv env;
        for (const auto &p : mod.params) {
            int64_t v = evalConst(*p.value, env);
            env[p.name] = v;
            defaults[p.name] = v;
        }
    }
    if (defaults.empty())
        return {};

    GenerateStats reference =
        elabModuleAsTop(design, module_name, defaults).stats;

    std::map<std::string, int64_t> chosen = defaults;
    for (const auto &p : mod.params) {
        int64_t def = defaults[p.name];
        if (def <= 1)
            continue;
        for (int64_t v = 1; v < def; ++v) {
            std::map<std::string, int64_t> candidate = chosen;
            candidate[p.name] = v;
            bool ok = true;
            GenerateStats stats;
            try {
                stats =
                    elabModuleAsTop(design, module_name, candidate)
                        .stats;
            } catch (const UcxError &) {
                ok = false;
            }
            if (ok && !stats.degenerateAgainst(reference)) {
                chosen[p.name] = v;
                break;
            }
        }
    }
    return chosen;
}

ComponentMeasurement
measureComponent(const Design &design, const std::string &top,
                 AccountingMode mode)
{
    ComponentMeasurement result;

    // Source metrics are accounting-independent (paper Section 5.3:
    // "the absence of the accounting procedure does not affect
    // them").
    SourceMetrics src = measureSource(design.sourceText(), top);
    result.metrics[static_cast<size_t>(Metric::LoC)] =
        static_cast<double>(src.loc);
    result.metrics[static_cast<size_t>(Metric::Stmts)] =
        static_cast<double>(src.stmts);

    // As-written elaboration gives the instance census either way.
    ElabResult whole = elaborate(design, top);
    whole.top.countModules(result.moduleCounts);

    if (mode == AccountingMode::WithoutProcedure) {
        // Whole flattened design: every instance contributes, at its
        // instantiated parameter values.
        SynthMetrics m = synthesize(whole.rtl);
        accumulate(result.metrics, m, true);
        std::map<std::string, int64_t> top_params;
        for (const auto &[name, value] : whole.top.params)
            top_params[name] = value;
        result.measuredParams[top] = top_params;
        return result;
    }

    // With the accounting procedure: each reachable module type is
    // measured once, standalone, at its minimal non-degenerate
    // parameterization.
    bool first = true;
    for (const auto &[module_name, count] : result.moduleCounts) {
        (void)count;
        std::map<std::string, int64_t> params =
            minimizeParameters(design, module_name);
        result.measuredParams[module_name] = params;
        ElabResult one = elabModuleAsTop(design, module_name, params);
        SynthMetrics m = synthesize(one.rtl);
        accumulate(result.metrics, m, first);
        first = false;
    }
    return result;
}

} // namespace ucx
