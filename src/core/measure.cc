#include "core/measure.hh"

#include <algorithm>

#include "exec/task_graph.hh"
#include "hdl/const_eval.hh"
#include "hdl/source_metrics.hh"
#include "synth/metrics.hh"
#include "util/error.hh"
#include "util/logging.hh"

namespace ucx
{

namespace
{

/**
 * Elaborate one module as its own top with given parameters,
 * black-boxing its children so only the module's own logic is
 * measured (the count-once rule).
 */
std::shared_ptr<const ElabResult>
elabModuleAsTop(const Design &design, const std::string &module_name,
                const std::map<std::string, int64_t> &params,
                ArtifactCache *cache)
{
    ElabOptions opts;
    opts.topParams = params;
    opts.blackBoxChildren = true;
    return elaborateShared(design, module_name, opts, cache);
}

/** Synthesize through the pass manager, memoized when cached. */
SynthMetrics
synthMetrics(const RtlDesign &rtl, const CacheKey &elab_key,
             const MeasureOptions &opts)
{
    PipelineRun run;
    if (opts.cache) {
        run.cache = opts.cache;
        run.base = synthCacheKey(elab_key, opts.passes);
    }
    return synthesizeWithPasses(rtl, opts.passes, run);
}

void
accumulate(MetricValues &into, const SynthMetrics &m, bool first)
{
    auto idx = [](Metric metric) {
        return static_cast<size_t>(metric);
    };
    into[idx(Metric::FanInLC)] += static_cast<double>(m.fanInLC);
    into[idx(Metric::Nets)] += static_cast<double>(m.nets);
    into[idx(Metric::Cells)] += static_cast<double>(m.cells);
    into[idx(Metric::FFs)] += static_cast<double>(m.ffs);
    into[idx(Metric::AreaL)] += m.areaLogicUm2;
    into[idx(Metric::AreaS)] += m.areaStorageUm2;
    into[idx(Metric::PowerD)] += m.powerDynamicMw;
    into[idx(Metric::PowerS)] += m.powerStaticUw;
    // Frequency is limited by the slowest structure, not summed.
    double &freq = into[idx(Metric::Freq)];
    if (first || m.freqMHz < freq)
        freq = m.freqMHz;
}

/** One module type's standalone measurement (WithProcedure). */
struct ModuleMeasure
{
    std::map<std::string, int64_t> params;
    SynthMetrics metrics;
};

ComponentMeasurement
measureComponentUncontexted(const Design &design,
                            const std::string &top,
                            const MeasureOptions &opts)
{
    const ExecContext &ctx =
        opts.exec ? *opts.exec : ExecContext::serial();
    ComponentMeasurement result;

    // The measurement is one request-scoped DAG: source metrics are
    // independent of elaboration, and — once the instance census is
    // known — each module type's standalone measurement is
    // independent of the others. Results are assembled in fixed
    // (module-map) order, so the numbers never depend on
    // scheduling.
    TaskGraph graph(ctx);

    // Source metrics are accounting-independent (paper Section 5.3:
    // "the absence of the accounting procedure does not affect
    // them").
    Future<SourceMetrics> src = graph.submit(
        [&design, &top] {
            return measureSource(design.sourceText(), top);
        },
        "measure.source");

    // As-written elaboration gives the instance census either way.
    // The join steals ready work (the source node, other requests'
    // nodes) while waiting.
    Future<std::shared_ptr<const ElabResult>> whole_f = graph.submit(
        [&design, &top, &opts] {
            return elaborateShared(design, top, {}, opts.cache);
        },
        "measure.elab");
    std::shared_ptr<const ElabResult> whole = whole_f.take();
    whole->top.countModules(result.moduleCounts);

    if (opts.mode == AccountingMode::WithoutProcedure) {
        // Whole flattened design: every instance contributes, at its
        // instantiated parameter values.
        SynthMetrics m = synthMetrics(
            whole->rtl, elabCacheKey(design, top, {}), opts);
        accumulate(result.metrics, m, true);
        std::map<std::string, int64_t> top_params;
        for (const auto &[name, value] : whole->top.params)
            top_params[name] = value;
        result.measuredParams[top] = top_params;
    } else {
        // With the accounting procedure: each reachable module type
        // is measured once, standalone, at its minimal
        // non-degenerate parameterization — one graph node per
        // type, joined in module-map order (Freq is a minimum, the
        // rest are sums, and the "first" flag follows that fixed
        // order).
        std::vector<std::string> modules;
        modules.reserve(result.moduleCounts.size());
        for (const auto &[module_name, count] : result.moduleCounts) {
            (void)count;
            modules.push_back(module_name);
        }
        std::vector<ModuleMeasure> measured =
            graph.map(modules.size(), [&](size_t i) {
                const std::string &module_name = modules[i];
                ModuleMeasure mm;
                mm.params = minimizeParameters(design, module_name,
                                               opts.cache);
                std::shared_ptr<const ElabResult> one =
                    elabModuleAsTop(design, module_name, mm.params,
                                    opts.cache);
                ElabOptions one_opts;
                one_opts.topParams = mm.params;
                one_opts.blackBoxChildren = true;
                mm.metrics = synthMetrics(
                    one->rtl,
                    elabCacheKey(design, module_name, one_opts),
                    opts);
                return mm;
            });
        bool first = true;
        for (size_t i = 0; i < modules.size(); ++i) {
            result.measuredParams[modules[i]] =
                std::move(measured[i].params);
            accumulate(result.metrics, measured[i].metrics, first);
            first = false;
        }
    }

    SourceMetrics s = src.take();
    result.metrics[static_cast<size_t>(Metric::LoC)] =
        static_cast<double>(s.loc);
    result.metrics[static_cast<size_t>(Metric::Stmts)] =
        static_cast<double>(s.stmts);
    return result;
}

/** Cache key of a whole-component measurement. */
CacheKey
measureKey(const Design &design, const std::string &top,
           const MeasureOptions &opts)
{
    CacheKey key("measure");
    key.addHash(fnv1a(design.sourceText()));
    key.add(top);
    key.add(opts.mode == AccountingMode::WithProcedure ? "acct"
                                                       : "flat");
    key.addHash(opts.passes.fingerprint());
    return key;
}

} // namespace

std::map<std::string, int64_t>
minimizeParameters(const Design &design,
                   const std::string &module_name,
                   ArtifactCache *cache)
{
    const Module &mod = design.module(module_name);

    // Defaults evaluated in declaration order.
    std::map<std::string, int64_t> defaults;
    {
        ConstEnv env;
        for (const auto &p : mod.params) {
            int64_t v = evalConst(*p.value, env);
            env[p.name] = v;
            defaults[p.name] = v;
        }
    }
    if (defaults.empty())
        return {};

    GenerateStats reference =
        elabModuleAsTop(design, module_name, defaults, cache)->stats;

    std::map<std::string, int64_t> chosen = defaults;
    for (const auto &p : mod.params) {
        int64_t def = defaults[p.name];
        if (def <= 1)
            continue;
        for (int64_t v = 1; v < def; ++v) {
            std::map<std::string, int64_t> candidate = chosen;
            candidate[p.name] = v;
            bool ok = true;
            GenerateStats stats;
            try {
                stats = elabModuleAsTop(design, module_name,
                                        candidate, cache)
                            ->stats;
            } catch (const UcxError &) {
                ok = false;
            }
            if (ok && !stats.degenerateAgainst(reference)) {
                chosen[p.name] = v;
                break;
            }
        }
    }
    return chosen;
}

ComponentMeasurement
measureComponent(const Design &design, const std::string &top,
                 const MeasureOptions &opts)
{
    try {
        if (!opts.cache)
            return measureComponentUncontexted(design, top, opts);
        return *opts.cache->getOrCompute<ComponentMeasurement>(
            measureKey(design, top, opts), [&] {
                return measureComponentUncontexted(design, top,
                                                   opts);
            });
    } catch (const UcxError &e) {
        // Name the failing component: a caller sweeping a registry
        // (buildAll, a bench loop) otherwise has to guess which
        // design died.
        throw UcxError("component '" + top + "': " + e.what());
    }
}

ComponentMeasurement
measureComponent(const Design &design, const std::string &top,
                 AccountingMode mode)
{
    MeasureOptions opts;
    opts.mode = mode;
    return measureComponent(design, top, opts);
}

} // namespace ucx
