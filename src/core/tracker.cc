#include "core/tracker.hh"

#include <algorithm>

#include "util/error.hh"

namespace ucx
{

ProductivityTracker::ProductivityTracker(Dataset history,
                                         std::string project,
                                         std::vector<Metric> metrics)
    : history_(std::move(history)), project_(std::move(project)),
      metrics_(std::move(metrics))
{
    require(!metrics_.empty(), "tracker needs at least one metric");
    refit();
}

void
ProductivityTracker::refit()
{
    fit_ = fitEstimator(history_, metrics_, FitMode::MixedEffects);
}

void
ProductivityTracker::completeComponent(const std::string &name,
                                       const MetricValues &metrics,
                                       double effort)
{
    Component c;
    c.project = project_;
    c.name = name;
    c.effort = effort;
    c.metrics = metrics;
    history_.add(std::move(c));
    ++completed_;
    refit();
}

std::optional<double>
ProductivityTracker::currentRho() const
{
    if (completed_ == 0)
        return std::nullopt;
    return fit_.productivity(project_);
}

std::vector<ComponentEstimate>
ProductivityTracker::estimate(
    const std::vector<PendingComponent> &pending) const
{
    double rho = currentRho().value_or(1.0);
    std::vector<ComponentEstimate> out;
    out.reserve(pending.size());
    for (const auto &p : pending) {
        ComponentEstimate e;
        e.name = p.name;
        e.median = fit_.predictMedian(p.metrics, rho);
        e.mean = fit_.predictMean(p.metrics, rho);
        auto [lo, hi] = fit_.confidenceInterval(e.median, 0.90);
        e.low90 = lo;
        e.high90 = hi;
        out.push_back(e);
    }
    return out;
}

std::vector<ComponentEstimate>
ProductivityTracker::relativeEstimate(
    const std::vector<PendingComponent> &pending) const
{
    std::vector<ComponentEstimate> out;
    out.reserve(pending.size());
    double max_median = 0.0;
    for (const auto &p : pending) {
        ComponentEstimate e;
        e.name = p.name;
        e.median = fit_.predictMedian(p.metrics, 1.0);
        max_median = std::max(max_median, e.median);
        out.push_back(e);
    }
    require(max_median > 0.0, "no positive estimates to normalize");
    for (auto &e : out) {
        e.median /= max_median;
        e.mean = e.median;
        auto [yl, yh] = fit_.confidenceInterval(1.0, 0.90);
        e.low90 = e.median * yl;
        e.high90 = e.median * yh;
    }
    return out;
}

} // namespace ucx
