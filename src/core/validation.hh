/**
 * @file
 * Out-of-sample validation of effort estimators.
 *
 * The paper evaluates estimators in-sample (sigma_eps of the fit).
 * These cross-validation drivers measure what a practitioner
 * actually experiences: the error when predicting a component (or a
 * whole team) that was *not* in the calibration set — directly
 * supporting the Section 3.1.1 use cases.
 */

#ifndef UCX_CORE_VALIDATION_HH
#define UCX_CORE_VALIDATION_HH

#include <string>
#include <vector>

#include "core/estimator.hh"
#include "exec/context.hh"

namespace ucx
{

/** One held-out prediction. */
struct HoldOutRecord
{
    std::string component; ///< Full component name.
    double actual = 0.0;   ///< Reported person-months.
    double predicted = 0.0; ///< Median prediction.
    double logError = 0.0; ///< log(predicted / actual).
};

/** Summary of a cross-validation run. */
struct CrossValidationResult
{
    std::vector<HoldOutRecord> records;

    /** @return sqrt(mean(logError^2)) — comparable to sigma_eps. */
    double rmsLogError() const;

    /** @return mean(logError) — systematic bias in log space. */
    double meanLogError() const;

    /** @return Fraction of |predicted/actual| ratios within 2x. */
    double withinFactorTwo() const;
};

/**
 * Leave-one-component-out cross-validation: each component is
 * predicted from a model fitted on the remaining 17, using the
 * held-out component's own team productivity (the team has other
 * components in the training set).
 *
 * @param dataset Calibration components (>= 3 per team recommended).
 * @param metrics Estimator metric subset.
 * @param mode    Fit mode for the per-fold fits.
 * @param ctx     Execution context; folds run through its pool with
 *                records kept in fold order.
 * @return Hold-out records and summaries.
 */
CrossValidationResult leaveOneComponentOut(
    const Dataset &dataset, const std::vector<Metric> &metrics,
    FitMode mode = FitMode::MixedEffects,
    const ExecContext &ctx = ExecContext::serial());

/**
 * Leave-one-project-out cross-validation: every component of one
 * team is predicted from a model fitted on the other teams, with
 * rho = 1 (the held-out team's productivity is unknown — the cold-
 * start scenario of Section 3.1.1).
 *
 * @param dataset Calibration components from >= 3 projects.
 * @param metrics Estimator metric subset.
 * @param mode    Fit mode for the per-fold fits.
 * @param ctx     Execution context; folds run through its pool with
 *                records kept in fold order.
 * @return Hold-out records and summaries.
 */
CrossValidationResult leaveOneProjectOut(
    const Dataset &dataset, const std::vector<Metric> &metrics,
    FitMode mode = FitMode::MixedEffects,
    const ExecContext &ctx = ExecContext::serial());

} // namespace ucx

#endif // UCX_CORE_VALIDATION_HH
