/**
 * @file
 * Reuse-adjusted effort estimation.
 *
 * Paper Section 2.5: "our analysis has implicitly assumed that each
 * component is implemented from scratch. In practice, components
 * are sometimes reused from older designs ... Integrating a reused
 * component incurs some design effort, even if it requires no
 * modification at all. The software engineering literature has
 * discussed effort estimation for reused components [Boehm]. We
 * regard the study of reuse in hardware as a subject for future
 * work."
 *
 * This extension implements that cited approach: a COCOMO-style
 * adaptation adjustment factor (AAF) combining the fractions of the
 * design and the code that must change plus the integration burden,
 * with a floor so that even unmodified reuse is never free.
 */

#ifndef UCX_CORE_REUSE_HH
#define UCX_CORE_REUSE_HH

#include "core/estimator.hh"

namespace ucx
{

/** How much of a reused component must be reworked. */
struct ReuseFactors
{
    /** Fraction of the microarchitecture/design changed, [0,1]. */
    double designModified = 0.0;
    /** Fraction of the HDL code changed, [0,1]. */
    double codeModified = 0.0;
    /** Relative integration/re-verification burden, [0,1]. */
    double integration = 0.0;
    /**
     * Minimum fraction of from-scratch effort charged even for
     * untouched reuse (interface understanding, hookup, regression
     * runs).
     */
    double minimumIntegration = 0.05;
};

/**
 * COCOMO-style adaptation adjustment factor:
 * AAF = max(0.4 DM + 0.3 CM + 0.3 IM, minimumIntegration).
 *
 * @param factors Reuse fractions (validated to [0,1]).
 * @return The multiplier on from-scratch effort, in
 *         [minimumIntegration, 1].
 */
double adaptationAdjustment(const ReuseFactors &factors);

/**
 * Median effort estimate for a reused component: the from-scratch
 * estimate of paper Eq. 1 scaled by the adaptation adjustment.
 *
 * @param estimator Calibrated estimator.
 * @param values    The component's metric values.
 * @param factors   Reuse fractions.
 * @param rho       Team productivity.
 * @return Estimated median person-months.
 */
double predictReusedMedian(const FittedEstimator &estimator,
                           const MetricValues &values,
                           const ReuseFactors &factors,
                           double rho = 1.0);

/**
 * Total median effort for a design mixing new and reused
 * components.
 *
 * @param estimator Calibrated estimator.
 * @param fresh     Metric values of from-scratch components.
 * @param reused    (metrics, factors) pairs of reused components.
 * @param rho       Team productivity.
 * @return Sum of the per-component median estimates.
 */
double predictMixedDesign(
    const FittedEstimator &estimator,
    const std::vector<MetricValues> &fresh,
    const std::vector<std::pair<MetricValues, ReuseFactors>> &reused,
    double rho = 1.0);

} // namespace ucx

#endif // UCX_CORE_REUSE_HH
