/**
 * @file
 * Component measurement: µHDL source -> all Table 3 metrics, with or
 * without the µComplexity accounting procedure (paper Section 2.2).
 *
 * With the procedure:
 *  - count each module *type* once, no matter how many instances the
 *    component contains ("account for a single instance");
 *  - measure each type at its minimal non-degenerate
 *    parameterization ("minimize the value of component
 *    parameters"), found by scanning each parameter down from its
 *    default and rejecting values whose elaboration loses generate
 *    loops or conditional branches that the default keeps.
 *
 * Without the procedure, the component is flattened as written and
 * every instance contributes at its instantiated size — the ablation
 * of paper Section 5.3 / Figure 6.
 *
 * The two source metrics (LoC, Stmts) are measured on the source
 * text either way; the paper notes the procedure does not affect
 * them.
 */

#ifndef UCX_CORE_MEASURE_HH
#define UCX_CORE_MEASURE_HH

#include <map>
#include <string>

#include "cache/artifact_cache.hh"
#include "core/metric.hh"
#include "exec/context.hh"
#include "hdl/design.hh"
#include "synth/elaborate.hh"
#include "synth/pass.hh"

namespace ucx
{

/** Whether to apply the Section 2.2 accounting procedure. */
enum class AccountingMode
{
    WithProcedure,    ///< Count-once + parameter minimization.
    WithoutProcedure, ///< Flatten as written.
};

/** Full measurement of one component. */
struct ComponentMeasurement
{
    MetricValues metrics{}; ///< All Table 3 metrics.

    /** Instances per module type in the as-written component. */
    std::map<std::string, size_t> moduleCounts;

    /**
     * Per module type, the parameter values actually measured
     * (minimal non-degenerate under WithProcedure, as-written
     * defaults under WithoutProcedure).
     */
    std::map<std::string, std::map<std::string, int64_t>>
        measuredParams;
};

/** Options threading the cache and pass config into measurement. */
struct MeasureOptions
{
    /** Whether to apply the Section 2.2 accounting procedure. */
    AccountingMode mode = AccountingMode::WithProcedure;

    /**
     * Memo store for elaborations, per-pass synthesis artifacts,
     * and whole measurements; null measures uncached.
     */
    ArtifactCache *cache = nullptr;

    /** Synthesis pipeline configuration. */
    PassConfig passes;

    /**
     * Execution context for the per-measurement task graph (source
     * metrics in parallel with elaboration, then one node per
     * module type under WithProcedure). Null measures serially;
     * results are byte-identical either way.
     */
    const ExecContext *exec = nullptr;
};

/**
 * Find the minimal non-degenerate parameterization of a module
 * (paper Section 2.2's scaling rule).
 *
 * Each parameter is scanned upward from 1 toward its default; the
 * smallest value whose elaboration (a) succeeds and (b) keeps every
 * generate loop and conditional branch that the default
 * parameterization exercises is selected. Parameters are minimized
 * in declaration order, holding earlier choices fixed.
 *
 * @param design      The design containing the module.
 * @param module_name Module to minimize.
 * @param cache       Memo store for the candidate elaborations.
 * @return Parameter name -> minimal value.
 */
std::map<std::string, int64_t> minimizeParameters(
    const Design &design, const std::string &module_name,
    ArtifactCache *cache = nullptr);

/**
 * Measure one component.
 *
 * A thrown UcxError names the component (its top module), so a
 * caller sweeping many designs knows which one failed.
 *
 * @param design µHDL design of the component (all its modules).
 * @param top    The component's top module.
 * @param opts   Accounting mode, cache, and pass configuration.
 * @return Metric values and accounting diagnostics.
 */
ComponentMeasurement measureComponent(const Design &design,
                                      const std::string &top,
                                      const MeasureOptions &opts);

/**
 * Measure one component, uncached.
 *
 * @param design µHDL design of the component (all its modules).
 * @param top    The component's top module.
 * @param mode   Accounting mode.
 * @return Metric values and accounting diagnostics.
 */
ComponentMeasurement measureComponent(
    const Design &design, const std::string &top,
    AccountingMode mode = AccountingMode::WithProcedure);

} // namespace ucx

#endif // UCX_CORE_MEASURE_HH
