/**
 * @file
 * Components, projects, and the calibration dataset — the accounting
 * unit of the µComplexity methodology (paper Section 2.2: the design
 * is partitioned into disjoint components measured individually).
 */

#ifndef UCX_CORE_DATASET_HH
#define UCX_CORE_DATASET_HH

#include <string>
#include <vector>

#include "core/metric.hh"
#include "nlme/data.hh"

namespace ucx
{

/**
 * Treatment of components whose selected metric values are all zero
 * (e.g. the FFs = 0 rows of paper Table 4): the log-linear model is
 * undefined on them.
 */
enum class ZeroPolicy
{
    ClampToOne, ///< Floor zero values at 1 (reproduces the paper).
    Drop,       ///< Skip the offending components.
    Error,      ///< Refuse to build the regression input.
};

/**
 * One measured design component: a data point of the regression
 * (paper Section 3: "each component ... is a data point consisting
 * of the reported design effort and the measured metrics").
 */
struct Component
{
    std::string project;  ///< Team/project name (grouping variable).
    std::string name;     ///< Component name, e.g. "Fetch".
    double effort = 0.0;  ///< Reported design effort (person-months).
    MetricValues metrics{}; ///< All Table 3 metric values.

    /** @return "Project-Name" as used in the paper's tables. */
    std::string fullName() const { return project + "-" + name; }
};

/** A calibration dataset: components from one or more projects. */
class Dataset
{
  public:
    /** Create an empty dataset. */
    Dataset() = default;

    /**
     * Append a component.
     *
     * @param component Component with effort > 0.
     */
    void add(Component component);

    /** @return All components in insertion order. */
    const std::vector<Component> &components() const
    {
        return components_;
    }

    /** @return The number of components. */
    size_t size() const { return components_.size(); }

    /** @return Distinct project names, in first-appearance order. */
    std::vector<std::string> projects() const;

    /**
     * Restrict to the components of one project.
     *
     * @param project Project name.
     * @return A dataset containing only that project's components.
     */
    Dataset filterProject(const std::string &project) const;

    /**
     * Build the grouped regression input for a metric subset.
     *
     * Components whose selected metric values are all zero make the
     * model's log(w.m) undefined. The policy decides their fate;
     * ClampToOne (floor the zero values at the smallest measurable
     * value, 1) reproduces the published Table 4 FFs row exactly and
     * is the default.
     *
     * @param metrics Metric subset used as covariates.
     * @param policy  Treatment of all-zero rows.
     * @return Grouped data with y = log(effort).
     */
    NlmeData toNlmeData(const std::vector<Metric> &metrics,
                        ZeroPolicy policy =
                            ZeroPolicy::ClampToOne) const;

    /**
     * @param metrics Metric subset.
     * @param policy  See toNlmeData.
     * @return The components actually used for the subset (clamped
     *         or with zero rows removed, per the policy), in group
     *         order matching toNlmeData.
     */
    std::vector<Component> usableComponents(
        const std::vector<Metric> &metrics,
        ZeroPolicy policy = ZeroPolicy::ClampToOne) const;

  private:
    std::vector<Component> components_;
};

} // namespace ucx

#endif // UCX_CORE_DATASET_HH
