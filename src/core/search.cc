#include "core/search.hh"

#include <algorithm>

#include "exec/task_graph.hh"

namespace ucx
{

namespace
{

void
sortBySigma(std::vector<RankedEstimator> &ranked)
{
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedEstimator &a,
                        const RankedEstimator &b) {
                         return a.fit.sigmaEps() < b.fit.sigmaEps();
                     });
}

} // namespace

namespace
{

/**
 * Fit every candidate metric subset through the context's pool.
 * Each candidate's fit is independent and deterministic, and the
 * results come back in candidate order, so the stable sort below
 * yields the same ranking at any thread count.
 */
std::vector<RankedEstimator>
rankCandidates(const Dataset &dataset,
               const std::vector<std::vector<Metric>> &candidates,
               FitMode mode, const ExecContext &ctx)
{
    TaskGraph graph(ctx);
    std::vector<RankedEstimator> ranked =
        graph.map(candidates.size(), [&](size_t i) {
            RankedEstimator entry;
            entry.metrics = candidates[i];
            entry.fit = fitEstimator(dataset, entry.metrics, mode,
                                     ZeroPolicy::ClampToOne, ctx);
            return entry;
        });
    sortBySigma(ranked);
    return ranked;
}

} // namespace

std::vector<RankedEstimator>
rankSingleMetrics(const Dataset &dataset, FitMode mode,
                  const ExecContext &ctx)
{
    std::vector<std::vector<Metric>> candidates;
    for (Metric m : allMetrics())
        candidates.push_back({m});
    return rankCandidates(dataset, candidates, mode, ctx);
}

std::vector<RankedEstimator>
rankMetricPairs(const Dataset &dataset, FitMode mode,
                const ExecContext &ctx)
{
    std::vector<std::vector<Metric>> candidates;
    const auto &all = allMetrics();
    for (size_t i = 0; i < all.size(); ++i)
        for (size_t j = i + 1; j < all.size(); ++j)
            candidates.push_back({all[i], all[j]});
    return rankCandidates(dataset, candidates, mode, ctx);
}

} // namespace ucx
