#include "core/search.hh"

#include <algorithm>

namespace ucx
{

namespace
{

void
sortBySigma(std::vector<RankedEstimator> &ranked)
{
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const RankedEstimator &a,
                        const RankedEstimator &b) {
                         return a.fit.sigmaEps() < b.fit.sigmaEps();
                     });
}

} // namespace

std::vector<RankedEstimator>
rankSingleMetrics(const Dataset &dataset, FitMode mode)
{
    std::vector<RankedEstimator> ranked;
    for (Metric m : allMetrics()) {
        RankedEstimator entry;
        entry.metrics = {m};
        entry.fit = fitEstimator(dataset, entry.metrics, mode);
        ranked.push_back(std::move(entry));
    }
    sortBySigma(ranked);
    return ranked;
}

std::vector<RankedEstimator>
rankMetricPairs(const Dataset &dataset, FitMode mode)
{
    std::vector<RankedEstimator> ranked;
    const auto &all = allMetrics();
    for (size_t i = 0; i < all.size(); ++i) {
        for (size_t j = i + 1; j < all.size(); ++j) {
            RankedEstimator entry;
            entry.metrics = {all[i], all[j]};
            entry.fit = fitEstimator(dataset, entry.metrics, mode);
            ranked.push_back(std::move(entry));
        }
    }
    sortBySigma(ranked);
    return ranked;
}

} // namespace ucx
