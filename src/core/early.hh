/**
 * @file
 * Early estimation from higher-level descriptions — the paper's
 * Section 7 future-work direction: "Such early estimators would
 * allow design considerations to be made early, when the costs are
 * low ... Such estimators must necessarily be derived from a
 * higher-level description of the design."
 *
 * The higher-level description here is a parameterized µHDL
 * component plus a target configuration that has not been built
 * yet. The estimator synthesizes a few *small* configurations
 * (cheap), fits a power law metric ~ a * param^b per metric, and
 * extrapolates the synthesis metrics — and hence the design effort
 * — of the large configuration without ever elaborating it.
 */

#ifndef UCX_CORE_EARLY_HH
#define UCX_CORE_EARLY_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cache/artifact_cache.hh"
#include "core/metric.hh"
#include "hdl/design.hh"

namespace ucx
{

/** A fitted power law m(p) = exp(alpha) * p^beta. */
struct ScalingFit
{
    double alpha = 0.0;   ///< Log-space intercept.
    double beta = 0.0;    ///< Exponent.
    double rmsLog = 0.0;  ///< Residual rms in log space.
    bool valid = false;   ///< Enough positive observations to fit.

    /**
     * @param param Parameter value (> 0).
     * @return The predicted metric value, 0 when invalid.
     */
    double predict(double param) const;
};

/**
 * Fit a power law to (param, metric) observations by least squares
 * in log-log space. Non-positive metric observations are skipped;
 * fewer than two usable points yields an invalid fit.
 *
 * @param points Observations; params must be > 0.
 * @return The fitted law.
 */
ScalingFit fitScalingLaw(
    const std::vector<std::pair<double, double>> &points);

/**
 * Predicts the synthesis metrics of unbuilt configurations of one
 * parameterized component.
 */
class EarlyEstimator
{
  public:
    /**
     * Create an estimator for one top-level parameter.
     *
     * @param design     The component's design.
     * @param top        Top module name.
     * @param param_name Name of the parameter being scaled.
     * @param cache      Memo store for the per-configuration
     *                   elaborations and synthesis runs; null
     *                   measures uncached.
     */
    EarlyEstimator(const Design &design, std::string top,
                   std::string param_name,
                   ArtifactCache *cache = nullptr);

    /**
     * Synthesize the given (small) configurations and fit the
     * per-metric scaling laws.
     *
     * @param values At least two distinct positive parameter values.
     */
    void calibrate(const std::vector<int64_t> &values);

    /**
     * Predict one synthesis metric at an unbuilt configuration.
     *
     * @param metric Which metric.
     * @param value  Parameter value (> 0).
     * @return The extrapolated metric value; source metrics (Stmts,
     *         LoC) are parameter-independent and returned directly.
     */
    double predictMetric(Metric metric, int64_t value) const;

    /** @return All metrics extrapolated at @p value. */
    MetricValues predictMetrics(int64_t value) const;

    /**
     * Ground truth for accuracy studies: synthesize the
     * configuration for real.
     *
     * @param value Parameter value.
     * @return The measured metrics.
     */
    MetricValues measureActual(int64_t value) const;

    /** @return The fitted law for one metric. */
    const ScalingFit &law(Metric metric) const;

  private:
    MetricValues measureAt(int64_t value) const;

    const Design &design_;
    std::string top_;
    std::string param_;
    ArtifactCache *cache_ = nullptr;
    std::map<Metric, ScalingFit> fits_;
    MetricValues sourceMetrics_{};
    bool calibrated_ = false;
};

} // namespace ucx

#endif // UCX_CORE_EARLY_HH
