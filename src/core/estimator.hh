/**
 * @file
 * Design-effort estimators (paper Section 2.3, Equation 1):
 *
 *     eff = (1/rho) * sum_k w_k * m_k
 *
 * An estimator is a metric subset; fitting it calibrates the weights
 * w_k, the accuracy sigma_eps, the spread of productivities
 * sigma_rho, and the per-project productivities rho_i.
 */

#ifndef UCX_CORE_ESTIMATOR_HH
#define UCX_CORE_ESTIMATOR_HH

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/dataset.hh"
#include "core/metric.hh"
#include "exec/context.hh"
#include "obs/trace.hh"

namespace ucx
{

namespace io
{
template <typename T> struct Serde; // src/io — binary artifact codec
}

/** How the estimator weights are calibrated. */
enum class FitMode
{
    MixedEffects, ///< Full model with productivity random effect.
    Pooled,       ///< rho_i = 1 for all projects (paper Section 3.2).
};

/** A calibrated design-effort estimator. */
class FittedEstimator
{
  public:
    /** @return The metrics the estimator combines. */
    const std::vector<Metric> &metrics() const { return metrics_; }

    /** @return The fitted weights, aligned with metrics(). */
    const std::vector<double> &weights() const { return weights_; }

    /** @return The residual log-sd (the paper's accuracy measure). */
    double sigmaEps() const { return sigmaEps_; }

    /** @return The productivity log-sd (0 for pooled fits). */
    double sigmaRho() const { return sigmaRho_; }

    /** @return Maximized log-likelihood. */
    double logLik() const { return logLik_; }

    /** @return Akaike information criterion. */
    double aic() const { return aic_; }

    /** @return Bayesian information criterion. */
    double bic() const { return bic_; }

    /** @return The fit mode used. */
    FitMode mode() const { return mode_; }

    /** @return Components used by the fit (zero rows dropped). */
    size_t componentsUsed() const { return nUsed_; }

    /** @return True when the underlying optimizer converged. */
    bool converged() const { return converged_; }

    /** @return Per-iteration history of the calibrating optimizer. */
    const obs::ConvergenceTrace &trace() const { return trace_; }

    /**
     * Productivity of a calibrated project.
     *
     * @param project Project present in the training data.
     * @return rho_i; throws UcxError for unknown projects.
     */
    double productivity(const std::string &project) const;

    /** @return All per-project productivities. */
    const std::map<std::string, double> &productivities() const
    {
        return rho_;
    }

    /**
     * Median effort estimate (paper Equation 1).
     *
     * @param values All metric values of the component.
     * @param rho    Productivity of the designing team (1 = typical).
     * @return Estimated median person-months.
     */
    double predictMedian(const MetricValues &values,
                         double rho = 1.0) const;

    /**
     * Mean effort estimate (paper Equation 4): the median inflated
     * by exp((sigma_eps^2 + sigma_rho^2) / 2).
     *
     * @param values All metric values of the component.
     * @param rho    Productivity of the designing team.
     * @return Estimated mean person-months.
     */
    double predictMean(const MetricValues &values,
                       double rho = 1.0) const;

    /**
     * Confidence interval around a median estimate (paper Figure 3).
     *
     * @param median_estimate Output of predictMedian.
     * @param confidence      Coverage in (0,1), e.g. 0.90.
     * @return The (low, high) effort bounds.
     */
    std::pair<double, double> confidenceInterval(
        double median_estimate, double confidence = 0.90) const;

  private:
    friend FittedEstimator fitEstimator(const Dataset &,
                                        const std::vector<Metric> &,
                                        FitMode, ZeroPolicy,
                                        const ExecContext &);
    friend struct io::Serde<FittedEstimator>;

    std::vector<Metric> metrics_;
    std::vector<double> weights_;
    double sigmaEps_ = 0.0;
    double sigmaRho_ = 0.0;
    double logLik_ = 0.0;
    double aic_ = 0.0;
    double bic_ = 0.0;
    FitMode mode_ = FitMode::MixedEffects;
    size_t nUsed_ = 0;
    bool converged_ = false;
    std::map<std::string, double> rho_;
    obs::ConvergenceTrace trace_;
};

/**
 * Calibrate an estimator on a dataset.
 *
 * @param dataset     Training components.
 * @param metrics     Metric subset defining the estimator.
 * @param mode        Mixed-effects (recommended) or pooled.
 * @param zero_policy Treatment of all-zero metric rows (see
 *                    Dataset::toNlmeData).
 * @param ctx         Execution context for the calibrating fit.
 * @return The calibrated estimator.
 */
FittedEstimator fitEstimator(const Dataset &dataset,
                             const std::vector<Metric> &metrics,
                             FitMode mode = FitMode::MixedEffects,
                             ZeroPolicy zero_policy =
                                 ZeroPolicy::ClampToOne,
                             const ExecContext &ctx =
                                 ExecContext::serial());

/**
 * Fit the paper's recommended DEE1 estimator (Stmts + FanInLC,
 * Section 5.1.1).
 *
 * @param dataset Training components.
 * @param mode    Fit mode.
 * @param ctx     Execution context for the calibrating fit.
 * @return The calibrated DEE1.
 */
FittedEstimator fitDee1(const Dataset &dataset,
                        FitMode mode = FitMode::MixedEffects,
                        const ExecContext &ctx =
                            ExecContext::serial());

} // namespace ucx

#endif // UCX_CORE_ESTIMATOR_HH
