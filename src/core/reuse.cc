#include "core/reuse.hh"

#include <algorithm>

#include "util/error.hh"

namespace ucx
{

double
adaptationAdjustment(const ReuseFactors &factors)
{
    auto check = [](double v, const char *name) {
        require(v >= 0.0 && v <= 1.0,
                std::string(name) + " must be in [0,1]");
    };
    check(factors.designModified, "designModified");
    check(factors.codeModified, "codeModified");
    check(factors.integration, "integration");
    check(factors.minimumIntegration, "minimumIntegration");

    double aaf = 0.4 * factors.designModified +
                 0.3 * factors.codeModified +
                 0.3 * factors.integration;
    return std::clamp(std::max(aaf, factors.minimumIntegration), 0.0,
                      1.0);
}

double
predictReusedMedian(const FittedEstimator &estimator,
                    const MetricValues &values,
                    const ReuseFactors &factors, double rho)
{
    return estimator.predictMedian(values, rho) *
           adaptationAdjustment(factors);
}

double
predictMixedDesign(
    const FittedEstimator &estimator,
    const std::vector<MetricValues> &fresh,
    const std::vector<std::pair<MetricValues, ReuseFactors>> &reused,
    double rho)
{
    double total = 0.0;
    for (const auto &values : fresh)
        total += estimator.predictMedian(values, rho);
    for (const auto &[values, factors] : reused)
        total += predictReusedMedian(estimator, values, factors, rho);
    return total;
}

} // namespace ucx
