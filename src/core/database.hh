/**
 * @file
 * Calibration-database persistence.
 *
 * Paper Section 3.1.1: "the basic principle is to use the best
 * possible estimates for w_k and rho at any time. Ideally, this
 * means maintaining a continuously updated database of component
 * measurements and of reported design efforts." This module stores
 * that database as a CSV file: one row per component with project,
 * name, effort, and all Table 3 metrics.
 */

#ifndef UCX_CORE_DATABASE_HH
#define UCX_CORE_DATABASE_HH

#include <iosfwd>
#include <string>

#include "core/dataset.hh"

namespace ucx
{

/**
 * Serialize a dataset as CSV (header row + one row per component).
 *
 * @param dataset Components to write.
 * @param out     Destination stream.
 */
void saveDatasetCsv(const Dataset &dataset, std::ostream &out);

/**
 * Parse a dataset from CSV produced by saveDatasetCsv (or written by
 * hand with the same header).
 *
 * @param in Source stream.
 * @return The dataset; throws UcxError on malformed input (wrong
 *         header, non-numeric fields, missing columns).
 */
Dataset loadDatasetCsv(std::istream &in);

/**
 * Convenience: write the dataset to a file path.
 *
 * @param dataset Components to write.
 * @param path    Destination file (created/truncated).
 */
void saveDatasetFile(const Dataset &dataset, const std::string &path);

/**
 * Convenience: read a dataset from a file path.
 *
 * @param path Source file.
 * @return The dataset; throws UcxError when the file cannot be read.
 */
Dataset loadDatasetFile(const std::string &path);

} // namespace ucx

#endif // UCX_CORE_DATABASE_HH
