/**
 * @file
 * Productivity tracker: the recommended usage loop of paper
 * Section 3.1.1.
 *
 * "Maintain a continuously updated database of component
 * measurements and of reported design efforts, and periodically
 * re-fit the model to obtain more up-to-date estimates for rho and,
 * to a lesser extent, w_k. ... As some components in the current
 * project are completely verified, we can re-calibrate the model and
 * obtain successively better estimates of the current rho. Such rho
 * can be used to estimate the design effort for the remaining
 * components of the design."
 */

#ifndef UCX_CORE_TRACKER_HH
#define UCX_CORE_TRACKER_HH

#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hh"

namespace ucx
{

/** A pending (not yet verified) component awaiting an estimate. */
struct PendingComponent
{
    std::string name;       ///< Component name.
    MetricValues metrics{}; ///< Measured metrics (available early).
};

/** An effort estimate for a pending component. */
struct ComponentEstimate
{
    std::string name;     ///< Component name.
    double median = 0.0;  ///< Median person-months (Eq. 1).
    double mean = 0.0;    ///< Mean person-months (Eq. 4).
    double low90 = 0.0;   ///< 90% CI lower bound.
    double high90 = 0.0;  ///< 90% CI upper bound.
};

/**
 * Maintains the calibration database for one ongoing project and
 * refits the model as components complete.
 */
class ProductivityTracker
{
  public:
    /**
     * Create a tracker.
     *
     * @param history Completed components from past projects.
     * @param project Name of the ongoing project.
     * @param metrics Metric subset of the estimator in use
     *                (default: DEE1's Stmts + FanInLC).
     */
    ProductivityTracker(Dataset history, std::string project,
                        std::vector<Metric> metrics = {
                            Metric::Stmts, Metric::FanInLC});

    /**
     * Record a completed (implemented + verified) component of the
     * ongoing project and re-calibrate the model.
     *
     * @param name    Component name.
     * @param metrics Measured metrics.
     * @param effort  Reported person-months.
     */
    void completeComponent(const std::string &name,
                           const MetricValues &metrics, double effort);

    /**
     * Latest estimate of the ongoing project's productivity.
     *
     * @return rho for the project, or std::nullopt before any of its
     *         components completed (paper: assume rho = 1 and make
     *         relative estimates only).
     */
    std::optional<double> currentRho() const;

    /**
     * Estimate the remaining components using the latest
     * calibration.
     *
     * @param pending Components still to be designed/verified.
     * @return One estimate per pending component; uses currentRho()
     *         when available and rho = 1 otherwise.
     */
    std::vector<ComponentEstimate> estimate(
        const std::vector<PendingComponent> &pending) const;

    /**
     * Relative effort estimates with rho = 1 (paper: "a component
     * with an estimated design effort of x is likely to take half as
     * many person-months as one with estimated design effort 2x").
     *
     * @param pending Components to compare.
     * @return Estimates normalized so the largest median is 1.
     */
    std::vector<ComponentEstimate> relativeEstimate(
        const std::vector<PendingComponent> &pending) const;

    /** @return The latest fitted estimator. */
    const FittedEstimator &estimator() const { return fit_; }

    /** @return Number of completed components of the ongoing project. */
    size_t completedInProject() const { return completed_; }

  private:
    void refit();

    Dataset history_;
    std::string project_;
    std::vector<Metric> metrics_;
    FittedEstimator fit_;
    size_t completed_ = 0;
};

} // namespace ucx

#endif // UCX_CORE_TRACKER_HH
