#include "core/validation.hh"

#include <cmath>

#include "exec/task_graph.hh"
#include "util/error.hh"

namespace ucx
{

double
CrossValidationResult::rmsLogError() const
{
    require(!records.empty(), "no hold-out records");
    double ss = 0.0;
    for (const auto &r : records)
        ss += r.logError * r.logError;
    return std::sqrt(ss / static_cast<double>(records.size()));
}

double
CrossValidationResult::meanLogError() const
{
    require(!records.empty(), "no hold-out records");
    double sum = 0.0;
    for (const auto &r : records)
        sum += r.logError;
    return sum / static_cast<double>(records.size());
}

double
CrossValidationResult::withinFactorTwo() const
{
    require(!records.empty(), "no hold-out records");
    size_t hits = 0;
    for (const auto &r : records)
        hits += std::abs(r.logError) <= std::log(2.0);
    return static_cast<double>(hits) /
           static_cast<double>(records.size());
}

namespace
{

/** Clamp selected metrics the way the fit's ZeroPolicy default
 * would, so hold-out predictions of all-zero rows stay defined. */
MetricValues
clampSelected(const MetricValues &values,
              const std::vector<Metric> &metrics)
{
    double sum = 0.0;
    for (Metric m : metrics)
        sum += values[static_cast<size_t>(m)];
    if (sum > 0.0)
        return values;
    MetricValues out = values;
    for (Metric m : metrics)
        out[static_cast<size_t>(m)] = 1.0;
    return out;
}

} // namespace

CrossValidationResult
leaveOneComponentOut(const Dataset &dataset,
                     const std::vector<Metric> &metrics, FitMode mode,
                     const ExecContext &ctx)
{
    const auto &components = dataset.components();
    require(components.size() >= 3,
            "need at least three components");

    // Decide the usable folds up front so the parallel loop has a
    // dense index space and the record order matches the serial
    // component order.
    std::vector<size_t> folds;
    for (size_t hold = 0; hold < components.size(); ++hold) {
        const Component &target = components[hold];
        // The held-out team must still be present to estimate rho.
        bool team_present = false;
        for (size_t i = 0; i < components.size(); ++i)
            team_present |= i != hold &&
                            components[i].project == target.project;
        if (team_present)
            folds.push_back(hold);
    }
    require(!folds.empty(), "no usable folds");

    // One graph node per fold: the nested estimator fits (which
    // parallelize internally) share the pool with the other folds
    // instead of serializing, and the join is index-ordered.
    CrossValidationResult result;
    TaskGraph graph(ctx);
    result.records = graph.map(folds.size(), [&](size_t f) {
        size_t hold = folds[f];
        Dataset train;
        for (size_t i = 0; i < components.size(); ++i)
            if (i != hold)
                train.add(components[i]);

        const Component &target = components[hold];
        FittedEstimator fit = fitEstimator(
            train, metrics, mode, ZeroPolicy::ClampToOne, ctx);
        double rho = mode == FitMode::MixedEffects
                         ? fit.productivity(target.project)
                         : 1.0;
        double predicted = fit.predictMedian(
            clampSelected(target.metrics, metrics), rho);

        HoldOutRecord record;
        record.component = target.fullName();
        record.actual = target.effort;
        record.predicted = predicted;
        record.logError = std::log(predicted / target.effort);
        return record;
    });
    return result;
}

CrossValidationResult
leaveOneProjectOut(const Dataset &dataset,
                   const std::vector<Metric> &metrics, FitMode mode,
                   const ExecContext &ctx)
{
    auto projects = dataset.projects();
    require(projects.size() >= 3, "need at least three projects");

    // One fold per held-out project; each fold produces the records
    // of that project's components, flattened in project order.
    TaskGraph graph(ctx);
    auto per_fold = graph.map(projects.size(), [&](size_t p) {
        const std::string &held = projects[p];
        Dataset train;
        for (const auto &c : dataset.components())
            if (c.project != held)
                train.add(c);

        FittedEstimator fit = fitEstimator(
            train, metrics, mode, ZeroPolicy::ClampToOne, ctx);
        std::vector<HoldOutRecord> records;
        for (const auto &c : dataset.components()) {
            if (c.project != held)
                continue;
            // Cold start: the held-out team's rho is unknown.
            double predicted = fit.predictMedian(
                clampSelected(c.metrics, metrics), 1.0);
            HoldOutRecord record;
            record.component = c.fullName();
            record.actual = c.effort;
            record.predicted = predicted;
            record.logError = std::log(predicted / c.effort);
            records.push_back(record);
        }
        return records;
    });

    CrossValidationResult result;
    for (auto &records : per_fold)
        for (auto &record : records)
            result.records.push_back(std::move(record));
    return result;
}

} // namespace ucx
