#include "core/database.hh"

#include <fstream>
#include <sstream>

#include "util/csv.hh"
#include "util/error.hh"
#include "util/str.hh"

namespace ucx
{

namespace
{

std::vector<std::string>
headerFields()
{
    std::vector<std::string> fields = {"project", "component",
                                       "effort"};
    for (Metric m : allMetrics())
        fields.push_back(metricName(m));
    return fields;
}

/**
 * Minimal CSV field splitter for the subset this module writes:
 * quoted fields with doubled quotes, no embedded newlines.
 */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> fields;
    std::string field;
    bool quoted = false;
    for (size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (quoted) {
            if (c == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    field += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
        } else if (c == '"') {
            quoted = true;
        } else if (c == ',') {
            fields.push_back(field);
            field.clear();
        } else {
            field += c;
        }
    }
    require(!quoted, "unterminated quote in CSV line");
    fields.push_back(field);
    return fields;
}

double
parseNumber(const std::string &text, const std::string &what)
{
    try {
        size_t pos = 0;
        double v = std::stod(text, &pos);
        require(pos == trim(text).size() || pos == text.size(),
                "trailing junk in " + what + ": '" + text + "'");
        return v;
    } catch (const std::invalid_argument &) {
        fatal("non-numeric " + what + ": '" + text + "'");
    } catch (const std::out_of_range &) {
        fatal("out-of-range " + what + ": '" + text + "'");
    }
}

} // namespace

void
saveDatasetCsv(const Dataset &dataset, std::ostream &out)
{
    CsvWriter writer(out);
    writer.writeRow(headerFields());
    for (const Component &c : dataset.components()) {
        std::vector<std::string> row = {c.project, c.name,
                                        fmtCompact(c.effort, 6)};
        for (Metric m : allMetrics()) {
            row.push_back(fmtCompact(
                c.metrics[static_cast<size_t>(m)], 6));
        }
        writer.writeRow(row);
    }
}

Dataset
loadDatasetCsv(std::istream &in)
{
    std::string line;
    require(static_cast<bool>(std::getline(in, line)),
            "empty dataset file");
    // Tolerate a UTF-8 BOM and trailing CR.
    if (line.size() >= 3 && line[0] == '\xef')
        line = line.substr(3);
    if (!line.empty() && line.back() == '\r')
        line.pop_back();

    std::vector<std::string> header = splitCsvLine(line);
    std::vector<std::string> expect = headerFields();
    require(header.size() == expect.size(),
            "dataset header has " + std::to_string(header.size()) +
                " columns; expected " +
                std::to_string(expect.size()));
    for (size_t i = 0; i < expect.size(); ++i) {
        require(toLower(trim(header[i])) == toLower(expect[i]),
                "unexpected column '" + header[i] + "'; expected '" +
                    expect[i] + "'");
    }

    Dataset dataset;
    size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (trim(line).empty())
            continue;
        std::vector<std::string> fields = splitCsvLine(line);
        require(fields.size() == expect.size(),
                "line " + std::to_string(line_no) + ": expected " +
                    std::to_string(expect.size()) + " fields, got " +
                    std::to_string(fields.size()));
        Component c;
        c.project = trim(fields[0]);
        c.name = trim(fields[1]);
        c.effort = parseNumber(fields[2], "effort");
        for (size_t k = 0; k < numMetrics; ++k) {
            c.metrics[static_cast<size_t>(allMetrics()[k])] =
                parseNumber(fields[3 + k],
                            metricName(allMetrics()[k]));
        }
        dataset.add(std::move(c));
    }
    return dataset;
}

void
saveDatasetFile(const Dataset &dataset, const std::string &path)
{
    std::ofstream out(path);
    require(out.good(), "cannot open '" + path + "' for writing");
    saveDatasetCsv(dataset, out);
    require(out.good(), "write to '" + path + "' failed");
}

Dataset
loadDatasetFile(const std::string &path)
{
    std::ifstream in(path);
    require(in.good(), "cannot open '" + path + "'");
    return loadDatasetCsv(in);
}

} // namespace ucx
