#include "core/early.hh"

#include <cmath>

#include "hdl/source_metrics.hh"
#include "linalg/solve.hh"
#include "synth/elaborate.hh"
#include "synth/metrics.hh"
#include "synth/pass.hh"
#include "util/error.hh"

namespace ucx
{

double
ScalingFit::predict(double param) const
{
    if (!valid)
        return 0.0;
    require(param > 0.0, "scaling law needs param > 0");
    return std::exp(alpha + beta * std::log(param));
}

ScalingFit
fitScalingLaw(const std::vector<std::pair<double, double>> &points)
{
    std::vector<std::pair<double, double>> usable;
    for (const auto &[p, m] : points) {
        require(p > 0.0, "scaling law needs params > 0");
        if (m > 0.0)
            usable.push_back({p, m});
    }
    ScalingFit fit;
    if (usable.size() < 2)
        return fit; // invalid

    // Degenerate case: all params equal.
    bool distinct = false;
    for (size_t i = 1; i < usable.size(); ++i)
        distinct |= usable[i].first != usable[0].first;
    if (!distinct)
        return fit;

    Matrix x(usable.size(), 2);
    Vector y(usable.size());
    for (size_t i = 0; i < usable.size(); ++i) {
        x(i, 0) = 1.0;
        x(i, 1) = std::log(usable[i].first);
        y[i] = std::log(usable[i].second);
    }
    Vector beta = leastSquares(x, y);
    fit.alpha = beta[0];
    fit.beta = beta[1];
    fit.valid = true;

    double ss = 0.0;
    for (size_t i = 0; i < usable.size(); ++i) {
        double r = y[i] - (fit.alpha + fit.beta * x(i, 1));
        ss += r * r;
    }
    fit.rmsLog = std::sqrt(ss / static_cast<double>(usable.size()));
    return fit;
}

EarlyEstimator::EarlyEstimator(const Design &design, std::string top,
                               std::string param_name,
                               ArtifactCache *cache)
    : design_(design), top_(std::move(top)),
      param_(std::move(param_name)), cache_(cache)
{
    require(design_.hasModule(top_), "unknown top module " + top_);
    bool has_param = false;
    for (const auto &p : design_.module(top_).params)
        has_param |= p.name == param_;
    require(has_param, "module '" + top_ + "' has no parameter '" +
                           param_ + "'");
}

MetricValues
EarlyEstimator::measureAt(int64_t value) const
{
    ElabOptions opts;
    opts.topParams[param_] = value;
    std::shared_ptr<const ElabResult> elab =
        elaborateShared(design_, top_, opts, cache_);
    PipelineRun run;
    PassConfig config;
    if (cache_) {
        run.cache = cache_;
        run.base = synthCacheKey(elabCacheKey(design_, top_, opts),
                                 config);
    }
    SynthMetrics m = synthesizeWithPasses(elab->rtl, config, run);

    MetricValues out{};
    SourceMetrics src = measureSource(design_.sourceText(), top_);
    out[static_cast<size_t>(Metric::Stmts)] =
        static_cast<double>(src.stmts);
    out[static_cast<size_t>(Metric::LoC)] =
        static_cast<double>(src.loc);
    out[static_cast<size_t>(Metric::FanInLC)] =
        static_cast<double>(m.fanInLC);
    out[static_cast<size_t>(Metric::Nets)] =
        static_cast<double>(m.nets);
    out[static_cast<size_t>(Metric::Freq)] = m.freqMHz;
    out[static_cast<size_t>(Metric::AreaL)] = m.areaLogicUm2;
    out[static_cast<size_t>(Metric::PowerD)] = m.powerDynamicMw;
    out[static_cast<size_t>(Metric::PowerS)] = m.powerStaticUw;
    out[static_cast<size_t>(Metric::AreaS)] = m.areaStorageUm2;
    out[static_cast<size_t>(Metric::Cells)] =
        static_cast<double>(m.cells);
    out[static_cast<size_t>(Metric::FFs)] =
        static_cast<double>(m.ffs);
    return out;
}

void
EarlyEstimator::calibrate(const std::vector<int64_t> &values)
{
    require(values.size() >= 2,
            "need at least two calibration points");
    std::vector<MetricValues> measured;
    for (int64_t v : values) {
        require(v > 0, "parameter values must be > 0");
        measured.push_back(measureAt(v));
    }
    sourceMetrics_ = measured[0];

    for (Metric m : allMetrics()) {
        if (m == Metric::Stmts || m == Metric::LoC)
            continue; // parameter-independent
        std::vector<std::pair<double, double>> points;
        for (size_t i = 0; i < values.size(); ++i) {
            points.push_back(
                {static_cast<double>(values[i]),
                 measured[i][static_cast<size_t>(m)]});
        }
        fits_[m] = fitScalingLaw(points);
    }
    calibrated_ = true;
}

double
EarlyEstimator::predictMetric(Metric metric, int64_t value) const
{
    require(calibrated_, "calibrate() first");
    if (metric == Metric::Stmts || metric == Metric::LoC)
        return sourceMetrics_[static_cast<size_t>(metric)];
    return fits_.at(metric).predict(static_cast<double>(value));
}

MetricValues
EarlyEstimator::predictMetrics(int64_t value) const
{
    MetricValues out{};
    for (Metric m : allMetrics())
        out[static_cast<size_t>(m)] = predictMetric(m, value);
    return out;
}

MetricValues
EarlyEstimator::measureActual(int64_t value) const
{
    return measureAt(value);
}

const ScalingFit &
EarlyEstimator::law(Metric metric) const
{
    require(calibrated_, "calibrate() first");
    return fits_.at(metric);
}

} // namespace ucx
