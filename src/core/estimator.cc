#include "core/estimator.hh"

#include <cmath>

#include "nlme/mixed_model.hh"
#include "nlme/pooled.hh"
#include "stats/lognormal.hh"
#include "util/error.hh"

namespace ucx
{

double
FittedEstimator::productivity(const std::string &project) const
{
    auto it = rho_.find(project);
    require(it != rho_.end(),
            "project '" + project + "' was not in the training data");
    return it->second;
}

double
FittedEstimator::predictMedian(const MetricValues &values,
                               double rho) const
{
    require(rho > 0.0, "productivity must be > 0");
    std::vector<double> m = selectMetrics(values, metrics_);
    double lin = 0.0;
    for (size_t k = 0; k < m.size(); ++k)
        lin += weights_[k] * m[k];
    require(lin > 0.0,
            "all selected metrics are zero; estimate undefined");
    return lin / rho;
}

double
FittedEstimator::predictMean(const MetricValues &values, double rho) const
{
    // Paper Equation 4: mean = median * exp((s_eps^2 + s_rho^2)/2).
    double median = predictMedian(values, rho);
    return median *
           std::exp((sigmaEps_ * sigmaEps_ + sigmaRho_ * sigmaRho_) /
                    2.0);
}

std::pair<double, double>
FittedEstimator::confidenceInterval(double median_estimate,
                                    double confidence) const
{
    require(median_estimate > 0.0, "median estimate must be > 0");
    auto [yl, yh] = errorFactors(sigmaEps_, confidence);
    return {yl * median_estimate, yh * median_estimate};
}

FittedEstimator
fitEstimator(const Dataset &dataset, const std::vector<Metric> &metrics,
             FitMode mode, ZeroPolicy zero_policy,
             const ExecContext &ctx)
{
    require(!metrics.empty(), "estimator needs at least one metric");
    NlmeData data = dataset.toNlmeData(metrics, zero_policy);

    FittedEstimator est;
    est.metrics_ = metrics;
    est.mode_ = mode;
    est.nUsed_ = data.totalObservations();

    if (mode == FitMode::MixedEffects) {
        MixedModel model(data);
        MixedFit fit = model.fit(ctx);
        est.weights_ = fit.weights;
        est.sigmaEps_ = fit.sigmaEps;
        est.sigmaRho_ = fit.sigmaRho;
        est.logLik_ = fit.logLik;
        est.aic_ = fit.aic;
        est.bic_ = fit.bic;
        est.converged_ = fit.converged;
        est.trace_ = std::move(fit.trace);
        for (size_t i = 0; i < fit.groupNames.size(); ++i)
            est.rho_[fit.groupNames[i]] = fit.productivity[i];
    } else {
        PooledModel model(data);
        PooledFit fit = model.fit(ctx);
        est.weights_ = fit.weights;
        est.sigmaEps_ = fit.sigmaEps;
        est.sigmaRho_ = 0.0;
        est.logLik_ = fit.logLik;
        est.aic_ = fit.aic;
        est.bic_ = fit.bic;
        est.converged_ = fit.converged;
        est.trace_ = std::move(fit.trace);
        for (const auto &g : data.groups)
            est.rho_[g.name] = 1.0;
    }
    return est;
}

FittedEstimator
fitDee1(const Dataset &dataset, FitMode mode, const ExecContext &ctx)
{
    return fitEstimator(dataset, {Metric::Stmts, Metric::FanInLC},
                        mode, ZeroPolicy::ClampToOne, ctx);
}

} // namespace ucx
