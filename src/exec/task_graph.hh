/**
 * @file
 * TaskGraph — the deterministic dependency-driven scheduler every
 * layer above the ThreadPool runs on.
 *
 * A graph is a DAG of tasks. Each submit() adds one node (optionally
 * after explicit dependencies) and returns a typed Future; ready
 * nodes are executed by pool workers woken through
 * ThreadPool::submit, and — the part that makes nesting work — by
 * any thread that *waits* on the graph. Future::get(), wait(), and
 * map() all run a continuation-stealing drain loop: while the
 * awaited node is unfinished they pop and execute other ready nodes
 * of the same graph, so a task that blocks on a dependency, or a
 * pool worker that enters a nested parallel region, keeps a core
 * busy instead of parking or degrading to serial execution.
 *
 * Determinism is structural, exactly as in the rest of the exec
 * layer: scheduling order is free, but every result lands in the
 * slot of its own node, joins read results in submission/index
 * order, and stochastic tasks draw from per-node split RNG streams
 * (Rng::split(node index)). The numbers at UCX_THREADS=8 are
 * byte-identical to a serial drain.
 *
 * Error contract: a throwing task stores its exception in its node;
 * dependents do not run — they fail with the exception of their
 * first (in dependency-list order) failed dependency. get()
 * rethrows the node's error; wait() rethrows the first error in
 * submission order, matching what the equivalent serial loop would
 * have thrown.
 */

#ifndef UCX_EXEC_TASK_GRAPH_HH
#define UCX_EXEC_TASK_GRAPH_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/context.hh"

namespace ucx
{

namespace exec
{
namespace detail
{

struct GraphState;

/** Create the shared scheduler state of one graph. */
std::shared_ptr<GraphState>
makeGraphState(std::shared_ptr<ThreadPool> pool);

/**
 * Add one node. @p fn runs once every dependency finished cleanly
 * and returns the node's result (null for void tasks).
 *
 * @param state Scheduler state.
 * @param fn    Node body.
 * @param deps  Node indices this node waits for.
 * @param label Trace label ("" for unlabeled).
 * @return The new node's index.
 */
size_t graphSubmit(GraphState &state,
                   std::function<std::shared_ptr<void>()> fn,
                   const std::vector<size_t> &deps,
                   std::string label);

/**
 * Block until node @p node is done, running other ready nodes of
 * the graph while waiting; rethrows the node's error.
 *
 * @return The node's result (null for void tasks).
 */
std::shared_ptr<void> graphAwait(GraphState &state, size_t node);

/** Like graphAwait, but moves the result out of the node. */
std::shared_ptr<void> graphTake(GraphState &state, size_t node);

/** Block until every node is done (never throws task errors). */
void graphWaitAll(GraphState &state);

/** @return First error in submission order, null when all clean. */
std::exception_ptr graphFirstError(GraphState &state);

/** @return True when node @p node finished (done or failed). */
bool graphDone(GraphState &state, size_t node);

} // namespace detail
} // namespace exec

class TaskGraph;

/**
 * Untyped reference to one graph node, used to declare dependencies
 * (`submit(fn, {a.handle(), b.handle()})`). Default-constructed
 * handles are invalid and may not be passed as dependencies.
 */
class TaskHandle
{
  public:
    TaskHandle() = default;

    /** @return True when this refers to a submitted node. */
    bool valid() const { return state_ != nullptr; }

  private:
    friend class TaskGraph;
    template <typename T> friend class Future;

    TaskHandle(std::shared_ptr<exec::detail::GraphState> state,
               size_t node)
        : state_(std::move(state)), node_(node)
    {
    }

    std::shared_ptr<exec::detail::GraphState> state_;
    size_t node_ = 0;
};

/**
 * Typed handle to one node's eventual result. Copies share the
 * node; the result storage lives in the graph state, which futures
 * keep alive, so a Future may outlive its TaskGraph.
 */
template <typename T>
class Future
{
  public:
    Future() = default;

    /** @return True when this refers to a submitted node. */
    bool valid() const { return state_ != nullptr; }

    /** @return True when the node finished (no blocking). */
    bool
    done() const
    {
        return valid() && exec::detail::graphDone(*state_, node_);
    }

    /**
     * Wait for the node (running other ready tasks of the graph
     * meanwhile) and return its result; rethrows the task's error.
     */
    const T &
    get() const
    {
        return *std::static_pointer_cast<T>(
            exec::detail::graphAwait(*state_, node_));
    }

    /**
     * Like get(), but moves the result out of the node. Call at
     * most once, and only when no other Future shares the node.
     */
    T
    take()
    {
        return std::move(*std::static_pointer_cast<T>(
            exec::detail::graphTake(*state_, node_)));
    }

    /** @return Untyped handle for dependency lists. */
    TaskHandle handle() const { return TaskHandle(state_, node_); }

  private:
    friend class TaskGraph;

    Future(std::shared_ptr<exec::detail::GraphState> state,
           size_t node)
        : state_(std::move(state)), node_(node)
    {
    }

    std::shared_ptr<exec::detail::GraphState> state_;
    size_t node_ = 0;
};

/** Future of a task with no result. */
template <>
class Future<void>
{
  public:
    Future() = default;

    bool valid() const { return state_ != nullptr; }

    bool
    done() const
    {
        return valid() && exec::detail::graphDone(*state_, node_);
    }

    /** Wait for the node; rethrows the task's error. */
    void
    get() const
    {
        exec::detail::graphAwait(*state_, node_);
    }

    TaskHandle handle() const { return TaskHandle(state_, node_); }

  private:
    friend class TaskGraph;

    Future(std::shared_ptr<exec::detail::GraphState> state,
           size_t node)
        : state_(std::move(state)), node_(node)
    {
    }

    std::shared_ptr<exec::detail::GraphState> state_;
    size_t node_ = 0;
};

/**
 * One dependency-driven scheduling region on an ExecContext's pool.
 *
 * Cheap to construct; graphs are per-request objects (one per
 * buildAll, per bootstrap, per parallelFor). Submission is
 * thread-safe, including from inside the graph's own tasks
 * (re-entrant sub-task submission is how nested parallel regions
 * scale instead of serializing). The destructor waits for every
 * submitted task, so references captured by task bodies only need
 * to outlive the graph object.
 */
class TaskGraph
{
  public:
    /**
     * Create a graph executing on @p ctx's pool (inline on the
     * waiting thread when the context is serial).
     */
    explicit TaskGraph(const ExecContext &ctx);

    /** Waits for all tasks; unretrieved task errors are dropped. */
    ~TaskGraph();

    TaskGraph(const TaskGraph &) = delete;
    TaskGraph &operator=(const TaskGraph &) = delete;

    /**
     * Submit a task with no dependencies.
     *
     * @param fn    Body; runs exactly once, on any thread.
     * @param label Trace label for the node's "exec.task" span.
     * @return Future of fn's result.
     */
    template <typename Fn>
    auto
    submit(Fn &&fn, std::string label = "")
        -> Future<std::decay_t<decltype(fn())>>
    {
        return submitAfter({}, std::forward<Fn>(fn),
                           std::move(label));
    }

    /**
     * Submit a task that runs only after every dependency finished
     * cleanly. A failed dependency fails this task with the same
     * exception (first failed dependency in @p deps order) without
     * running it.
     *
     * @param deps  Handles of tasks of *this* graph.
     * @param fn    Body; may call Future::get() on its dependencies
     *              (done, so the reads are free) and submit further
     *              sub-tasks.
     * @param label Trace label for the node's "exec.task" span.
     * @return Future of fn's result.
     */
    template <typename Fn>
    auto
    submitAfter(const std::vector<TaskHandle> &deps, Fn &&fn,
                std::string label = "")
        -> Future<std::decay_t<decltype(fn())>>
    {
        using T = std::decay_t<decltype(fn())>;
        std::function<std::shared_ptr<void>()> wrapped;
        if constexpr (std::is_void_v<T>) {
            wrapped = [f = std::forward<Fn>(fn)]() mutable
                -> std::shared_ptr<void> {
                f();
                return nullptr;
            };
        } else {
            wrapped = [f = std::forward<Fn>(fn)]() mutable
                -> std::shared_ptr<void> {
                return std::static_pointer_cast<void>(
                    std::make_shared<T>(f()));
            };
        }
        size_t node = exec::detail::graphSubmit(
            *state_, std::move(wrapped), depIndices(deps),
            std::move(label));
        return Future<T>(state_, node);
    }

    /**
     * Deterministic fork-join: submit fn(i) for every i in [0, n)
     * as independent nodes and join in index order — the graph
     * equivalent of ExecContext::parallelMap, safe to call from
     * inside other graph tasks.
     *
     * @param n  Iteration count.
     * @param fn Body returning the element for index i.
     * @return { fn(0), ..., fn(n-1) }; rethrows the lowest-index
     *         error, like a serial loop.
     */
    template <typename Fn>
    auto
    map(size_t n, Fn &&fn)
        -> std::vector<std::decay_t<decltype(fn(size_t{0}))>>
    {
        using T = std::decay_t<decltype(fn(size_t{0}))>;
        std::vector<Future<T>> futures;
        futures.reserve(n);
        for (size_t i = 0; i < n; ++i)
            futures.push_back(submit([i, &fn] { return fn(i); }));
        std::vector<T> out;
        out.reserve(n);
        for (Future<T> &f : futures)
            out.push_back(f.take());
        return out;
    }

    /**
     * Wait for every submitted task, running ready ones on the
     * calling thread; rethrows the first error in submission order.
     */
    void wait();

  private:
    std::vector<size_t>
    depIndices(const std::vector<TaskHandle> &deps) const;

    std::shared_ptr<exec::detail::GraphState> state_;
    ExecContext ctx_; ///< Keeps the pool alive while tasks run.
};

} // namespace ucx

#endif // UCX_EXEC_TASK_GRAPH_HH
