#include "exec/task_graph.hh"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "obs/metrics.hh"
#include "obs/tracelog.hh"
#include "util/error.hh"

namespace ucx
{
namespace exec
{
namespace detail
{

namespace
{

/** One task of a graph. Protected by GraphState::mutex. */
struct Node
{
    enum class State
    {
        Blocked, ///< Waiting on unfinished dependencies.
        Ready,   ///< In the ready deque.
        Running, ///< Body executing on some thread.
        Done     ///< Finished (result or error set).
    };

    /** Body; moved out (and cleared) when the node starts. */
    std::function<std::shared_ptr<void>()> run;
    std::shared_ptr<void> result;
    std::exception_ptr error;
    /** Dependencies in declaration order (error-propagation order). */
    std::vector<size_t> deps;
    /** Nodes whose pendingDeps this node decrements on finish. */
    std::vector<size_t> dependents;
    size_t pendingDeps = 0;
    State state = State::Blocked;
    std::string label;
};

} // namespace

/**
 * Shared scheduler state of one graph. All fields except the pool
 * handle are protected by `mutex`; `cv` is notified whenever a node
 * finishes or becomes ready, which is exactly what the drain loops
 * wait on.
 */
struct GraphState : std::enable_shared_from_this<GraphState>
{
    std::mutex mutex;
    std::condition_variable cv;
    /** FIFO of Ready node indices (FIFO keeps the serial drain in
     *  submission order, i.e. the order an equivalent loop runs). */
    std::deque<size_t> ready;
    /** Deque for stable references while nodes are appended. */
    std::deque<Node> nodes;
    /** Nodes not yet Done. */
    size_t incomplete = 0;
    /**
     * Weak on purpose: a stale wake-up shim may hold the last
     * reference to this state, and if the state owned the pool the
     * pool destructor could run on one of its own workers (a
     * self-join). The TaskGraph's ExecContext copy keeps the pool
     * alive for as long as kicks can be submitted.
     */
    std::weak_ptr<ThreadPool> pool;
    /** True when a pool exists — then ready nodes get kicks. */
    bool parallel = false;
    /**
     * Threads currently inside kick() holding a strong pool
     * reference. graphWaitAll waits for this to reach zero so the
     * graph owner's ExecContext (which holds the pool) provably
     * outlives every such temporary — otherwise a racing kick could
     * drop the *last* pool reference on a worker thread, and the
     * pool destructor would self-join.
     */
    size_t kicksInFlight = 0;
};

namespace
{

/**
 * Error of the first (in dependency-declaration order) failed
 * dependency of @p n, or null. Callers hold the state mutex and
 * only ask once every dependency is Done.
 */
std::exception_ptr
firstDepErrorLocked(const GraphState &state, const Node &n)
{
    for (size_t d : n.deps)
        if (state.nodes[d].error)
            return state.nodes[d].error;
    return nullptr;
}

/**
 * Mark node @p idx Done with @p result / @p error, release its
 * dependents, and wake waiters. Returns the indices that became
 * Ready so the caller can kick pool workers after unlocking.
 *
 * Called with the state mutex held.
 */
std::vector<size_t>
finishLocked(GraphState &state, size_t idx,
             std::shared_ptr<void> result, std::exception_ptr error)
{
    Node &n = state.nodes[idx];
    n.result = std::move(result);
    n.error = error;
    n.state = Node::State::Done;
    --state.incomplete;
    std::vector<size_t> newReady;
    for (size_t d : n.dependents) {
        Node &dep = state.nodes[d];
        if (--dep.pendingDeps == 0) {
            dep.state = Node::State::Ready;
            state.ready.push_back(d);
            newReady.push_back(d);
        }
    }
    n.dependents.clear();
    state.cv.notify_all();
    return newReady;
}

/**
 * Submit one wake-up shim per newly ready node. Each shim runs the
 * *front* ready node of the graph (not a specific one) and no-ops
 * when the graph died or a draining thread already emptied the
 * deque — stale kicks are harmless by design.
 */
void runOne(GraphState &state, std::unique_lock<std::mutex> &lock);

void
kick(GraphState &state, size_t count)
{
    std::shared_ptr<ThreadPool> pool = state.pool.lock();
    if (!pool)
        return;
    std::weak_ptr<GraphState> weak = state.weak_from_this();
    for (size_t i = 0; i < count; ++i) {
        pool->submit([weak] {
            std::shared_ptr<GraphState> s = weak.lock();
            if (!s)
                return;
            std::unique_lock<std::mutex> lock(s->mutex);
            if (!s->ready.empty())
                runOne(*s, lock);
        });
    }
}

/**
 * Pop and execute the front ready node. Entered and left with the
 * lock held; unlocked while the body runs, so other threads can
 * pop, finish, and submit concurrently.
 */
void
runOne(GraphState &state, std::unique_lock<std::mutex> &lock)
{
    size_t idx = state.ready.front();
    state.ready.pop_front();
    Node &n = state.nodes[idx];
    n.state = Node::State::Running;
    // Dependencies are all Done here; a failed one fails this node
    // without running it (the serial loop would never have reached
    // this iteration either).
    std::exception_ptr err = firstDepErrorLocked(state, n);
    std::function<std::shared_ptr<void>()> fn = std::move(n.run);
    n.run = nullptr;
    std::string label = n.label;

    lock.unlock();
    std::shared_ptr<void> result;
    if (!err) {
        using Clock = std::chrono::steady_clock;
        bool timing = obs::enabled();
        Clock::time_point start;
        if (timing)
            start = Clock::now();
        {
            obs::TraceScope trace("exec.task");
            if (trace.active()) {
                trace.arg("node", std::to_string(idx));
                if (!label.empty())
                    trace.arg("label", label);
            }
            try {
                result = fn();
            } catch (...) {
                err = std::current_exception();
            }
        }
        if (timing) {
            static obs::Counter &tasks =
                obs::counter("exec.graph.tasks");
            static obs::Histogram &task_us =
                obs::histogram("exec.graph.task_us");
            tasks.add(1);
            task_us.observe(std::chrono::duration<double, std::micro>(
                                Clock::now() - start)
                                .count());
        }
    }
    // Destroy the body outside the lock — closures own captured
    // shared state whose destructors must not run under our mutex.
    fn = nullptr;
    lock.lock();

    std::vector<size_t> newReady =
        finishLocked(state, idx, std::move(result), err);
    if (!newReady.empty() && state.parallel) {
        ++state.kicksInFlight;
        lock.unlock();
        kick(state, newReady.size());
        lock.lock();
        if (--state.kicksInFlight == 0)
            state.cv.notify_all();
    }
}

} // namespace

std::shared_ptr<GraphState>
makeGraphState(std::shared_ptr<ThreadPool> pool)
{
    auto state = std::make_shared<GraphState>();
    state->parallel = pool != nullptr;
    state->pool = pool;
    return state;
}

size_t
graphSubmit(GraphState &state,
            std::function<std::shared_ptr<void>()> fn,
            const std::vector<size_t> &deps, std::string label)
{
    bool kickOne = false;
    size_t idx;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        idx = state.nodes.size();
        state.nodes.emplace_back();
        Node &n = state.nodes.back();
        n.run = std::move(fn);
        n.deps = deps;
        n.label = std::move(label);
        for (size_t d : deps) {
            require(d < idx, "task dependency submitted later than "
                             "its dependent");
            Node &dep = state.nodes[d];
            if (dep.state != Node::State::Done) {
                ++n.pendingDeps;
                dep.dependents.push_back(idx);
            }
        }
        ++state.incomplete;
        if (n.pendingDeps == 0) {
            n.state = Node::State::Ready;
            state.ready.push_back(idx);
            kickOne = state.parallel;
            if (kickOne)
                ++state.kicksInFlight;
            // A drain loop may be parked on an empty deque.
            state.cv.notify_all();
        }
    }
    if (kickOne) {
        kick(state, 1);
        std::lock_guard<std::mutex> lock(state.mutex);
        if (--state.kicksInFlight == 0)
            state.cv.notify_all();
    }
    if (obs::enabled()) {
        static obs::Counter &submits =
            obs::counter("exec.graph.submits");
        submits.add(1);
    }
    return idx;
}

std::shared_ptr<void>
graphAwait(GraphState &state, size_t node)
{
    std::unique_lock<std::mutex> lock(state.mutex);
    for (;;) {
        Node &n = state.nodes[node];
        if (n.state == Node::State::Done) {
            if (n.error)
                std::rethrow_exception(n.error);
            return n.result;
        }
        if (!state.ready.empty()) {
            // Continuation stealing: run some ready node of this
            // graph instead of parking the thread.
            runOne(state, lock);
            continue;
        }
        state.cv.wait(lock, [&state, node] {
            return state.nodes[node].state == Node::State::Done ||
                   !state.ready.empty();
        });
    }
}

std::shared_ptr<void>
graphTake(GraphState &state, size_t node)
{
    std::shared_ptr<void> result = graphAwait(state, node);
    std::lock_guard<std::mutex> lock(state.mutex);
    state.nodes[node].result = nullptr;
    return result;
}

void
graphWaitAll(GraphState &state)
{
    std::unique_lock<std::mutex> lock(state.mutex);
    for (;;) {
        // Kicks in flight hold strong pool references; returning
        // before they drain would let the caller tear down the
        // graph's ExecContext while a worker still holds one.
        if (state.incomplete == 0 && state.kicksInFlight == 0)
            return;
        if (!state.ready.empty()) {
            runOne(state, lock);
            continue;
        }
        state.cv.wait(lock, [&state] {
            return (state.incomplete == 0 &&
                    state.kicksInFlight == 0) ||
                   !state.ready.empty();
        });
    }
}

std::exception_ptr
graphFirstError(GraphState &state)
{
    std::lock_guard<std::mutex> lock(state.mutex);
    for (const Node &n : state.nodes)
        if (n.error)
            return n.error;
    return nullptr;
}

bool
graphDone(GraphState &state, size_t node)
{
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.nodes[node].state == Node::State::Done;
}

} // namespace detail
} // namespace exec

TaskGraph::TaskGraph(const ExecContext &ctx)
    : state_(exec::detail::makeGraphState(ctx.pool())), ctx_(ctx)
{
}

TaskGraph::~TaskGraph()
{
    exec::detail::graphWaitAll(*state_);
}

void
TaskGraph::wait()
{
    exec::detail::graphWaitAll(*state_);
    std::exception_ptr err = exec::detail::graphFirstError(*state_);
    if (err)
        std::rethrow_exception(err);
}

std::vector<size_t>
TaskGraph::depIndices(const std::vector<TaskHandle> &deps) const
{
    std::vector<size_t> indices;
    indices.reserve(deps.size());
    for (const TaskHandle &h : deps) {
        require(h.state_ == state_,
                "task dependency belongs to a different graph");
        indices.push_back(h.node_);
    }
    return indices;
}

} // namespace ucx
