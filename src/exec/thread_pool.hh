/**
 * @file
 * Fixed-size worker-thread pool for the exec layer.
 *
 * The pool is deliberately simple: a mutex-protected FIFO of
 * std::function tasks drained by dedicated worker threads. All
 * parallelism in this library goes through the TaskGraph scheduler
 * (ExecContext::parallelFor included), which submits one wake-up
 * task per ready graph node; the pool itself never needs work
 * stealing because node results are addressed by index, not by
 * completion order, and a thread that blocks on a graph join drains
 * ready nodes of that graph instead of parking.
 */

#ifndef UCX_EXEC_THREAD_POOL_HH
#define UCX_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ucx
{
namespace exec
{

/**
 * Dedicated worker threads draining a shared task queue.
 *
 * Tasks must not block on other tasks of the same pool (batches
 * submitted from a worker thread run inline instead — see
 * ExecContext), so the pool cannot deadlock on nesting.
 */
class ThreadPool
{
  public:
    /**
     * Start the workers.
     *
     * @param threads Worker count; must be >= 1.
     */
    explicit ThreadPool(size_t threads);

    /** Drains outstanding tasks, then joins the workers. */
    ~ThreadPool();

    /** @return Number of worker threads. */
    size_t threads() const { return workers_.size(); }

    /**
     * Run a batch of tasks and block until every one finished.
     *
     * Exceptions thrown by tasks are captured; the first one (in
     * task order) is rethrown on the calling thread after the whole
     * batch has drained, matching what a serial loop would throw.
     *
     * @param tasks Callables executed on the workers.
     */
    void run(const std::vector<std::function<void()>> &tasks);

    /**
     * Enqueue one fire-and-forget task and return immediately.
     *
     * The task must not throw (the pool has nowhere to deliver the
     * exception); the TaskGraph scheduler, the only caller, submits
     * wake-up shims that capture errors inside the graph instead.
     *
     * @param task Callable executed on some worker, eventually.
     */
    void submit(std::function<void()> task);

    /**
     * @return True when called from one of this process's pool
     *         worker threads (any pool). Used to run nested
     *         parallel regions inline instead of re-submitting.
     */
    static bool onWorkerThread();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

  private:
    /** @param index Worker index, 0-based; names the trace track. */
    void workerLoop(size_t index);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stop_ = false;
};

} // namespace exec
} // namespace ucx

#endif // UCX_EXEC_THREAD_POOL_HH
