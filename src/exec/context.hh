/**
 * @file
 * ExecContext — the execution context threaded through every
 * stochastic call chain of the library (bootstrap replicates,
 * multi-start restarts, cross-validation folds, estimator search,
 * design builds).
 *
 * One context object flows top-to-bottom from a bench/example into
 * the layer that owns a loop; the loop body draws randomness from a
 * per-task stream (Rng::split) and writes its result into the slot
 * of its own index. That combination makes every result *seed-stable
 * and independent of thread count*: the numbers at UCX_THREADS=8 are
 * byte-identical to the numbers of ExecContext::serial().
 *
 * Chunking is static: [0, n) is cut into one contiguous chunk per
 * worker up front, and each chunk becomes one node of a TaskGraph.
 * Determinism comes from index-addressed results, never from
 * scheduling order; the graph's continuation stealing means a loop
 * entered from inside another parallel region genuinely runs in
 * parallel (the waiting thread executes ready chunks itself while
 * pool workers pick up the rest) instead of degrading to serial.
 */

#ifndef UCX_EXEC_CONTEXT_HH
#define UCX_EXEC_CONTEXT_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.hh"

namespace ucx
{

/**
 * Bundle of thread pool + parallel-loop helpers handed down the call
 * chains. Copying a context is cheap (the pool is shared).
 *
 * A context without a pool (serial(), or threads() == 1) runs every
 * loop inline; results are identical either way. Loop bodies given
 * to parallelFor/parallelMap must be safe to call concurrently when
 * the context is parallel — in this library they are pure functions
 * of the loop index plus a per-index RNG stream.
 */
class ExecContext
{
  public:
    /** A context that runs everything inline on the calling thread. */
    static const ExecContext &serial();

    /**
     * A context with an explicit degree of parallelism.
     *
     * @param threads 0 or 1 gives a serial context; otherwise a pool
     *                with that many workers.
     */
    static ExecContext withThreads(size_t threads);

    /**
     * The default context of benches/examples: thread count from the
     * UCX_THREADS environment variable (hardware concurrency when
     * unset or invalid; 1 = serial).
     */
    static ExecContext fromEnv();

    /** Serial context (same as serial(), but an owned value). */
    ExecContext() = default;

    /** @return Degree of parallelism (1 for serial contexts). */
    size_t threads() const
    {
        return pool_ ? pool_->threads() : 1;
    }

    /** @return True when loops may run on pool workers. */
    bool parallel() const { return pool_ != nullptr; }

    /**
     * @return Shared handle of the underlying pool — null for
     *         serial contexts. Exists for TaskGraph, which
     *         schedules its wake-ups on the context's pool; other
     *         code should go through parallelFor/TaskGraph.
     */
    const std::shared_ptr<exec::ThreadPool> &pool() const
    {
        return pool_;
    }

    /**
     * Run fn(i) for every i in [0, n).
     *
     * The index range is cut into contiguous static chunks, one per
     * worker, submitted as independent TaskGraph nodes. Calls made
     * from inside a pool task are safe and still parallel: the
     * nested region's chunks join the shared pool, and the waiting
     * thread runs ready chunks instead of blocking.
     *
     * @param n  Iteration count.
     * @param fn Body; invoked exactly once per index.
     */
    template <typename Fn>
    void
    parallelFor(size_t n, Fn &&fn) const
    {
        if (!pool_ || n <= 1) {
            for (size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        runChunked(n, [&fn](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
                fn(i);
        });
    }

    /**
     * Map [0, n) through fn, returning results ordered by index
     * regardless of which thread computed them.
     *
     * @param n  Iteration count.
     * @param fn Body returning the element for index i.
     * @return { fn(0), fn(1), ..., fn(n-1) }.
     */
    template <typename Fn>
    auto
    parallelMap(size_t n, Fn &&fn) const
        -> std::vector<std::decay_t<decltype(fn(size_t{0}))>>
    {
        using T = std::decay_t<decltype(fn(size_t{0}))>;
        std::vector<T> out(n);
        parallelFor(n, [&](size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    explicit ExecContext(std::shared_ptr<exec::ThreadPool> pool)
        : pool_(std::move(pool))
    {
    }

    /** Split [0, n) into static chunks and run them on the pool. */
    void runChunked(
        size_t n,
        const std::function<void(size_t, size_t)> &chunk) const;

    std::shared_ptr<exec::ThreadPool> pool_;
};

} // namespace ucx

#endif // UCX_EXEC_CONTEXT_HH
