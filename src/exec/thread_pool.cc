#include "exec/thread_pool.hh"

#include <atomic>
#include <chrono>
#include <exception>

#include "obs/metrics.hh"
#include "obs/tracelog.hh"
#include "util/error.hh"

namespace ucx
{
namespace exec
{

namespace
{

/** Set for the lifetime of every pool worker thread. */
thread_local bool tlOnWorker = false;

} // namespace

ThreadPool::ThreadPool(size_t threads)
{
    require(threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
    if (obs::enabled())
        obs::gauge("exec.pool.threads")
            .set(static_cast<double>(threads));
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::onWorkerThread()
{
    return tlOnWorker;
}

void
ThreadPool::workerLoop(size_t index)
{
    tlOnWorker = true;
    // Register this worker's trace track up front so every pool
    // worker shows up in the Perfetto export even before (or
    // without) its first task.
    if (obs::traceEnabled())
        obs::setTraceThreadName("pool-worker-" +
                                std::to_string(index));
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stop_)
                    return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (obs::enabled()) {
        static obs::Counter &submits =
            obs::counter("exec.pool.submits");
        submits.add(1);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::run(const std::vector<std::function<void()>> &tasks)
{
    if (tasks.empty())
        return;

    struct Batch
    {
        std::mutex mutex;
        std::condition_variable done;
        size_t pending = 0;
        std::exception_ptr firstError;
        size_t firstErrorIndex = 0;
    };
    Batch batch;
    batch.pending = tasks.size();

    bool timing = obs::enabled();
    if (timing) {
        static obs::Counter &batches = obs::counter("exec.pool.batches");
        static obs::Counter &submitted = obs::counter("exec.pool.tasks");
        static obs::Histogram &depth =
            obs::histogram("exec.pool.queue_depth");
        batches.add(1);
        submitted.add(tasks.size());
        std::lock_guard<std::mutex> lock(mutex_);
        depth.observe(static_cast<double>(queue_.size()));
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t i = 0; i < tasks.size(); ++i) {
            const auto &task = tasks[i];
            queue_.emplace_back([&batch, &task, i, timing] {
                using Clock = std::chrono::steady_clock;
                Clock::time_point start;
                if (timing)
                    start = Clock::now();
                std::exception_ptr err;
                try {
                    task();
                } catch (...) {
                    err = std::current_exception();
                }
                if (timing) {
                    static obs::Histogram &task_us =
                        obs::histogram("exec.pool.task_us");
                    task_us.observe(
                        std::chrono::duration<double, std::micro>(
                            Clock::now() - start)
                            .count());
                }
                std::lock_guard<std::mutex> lock(batch.mutex);
                if (err &&
                    (!batch.firstError || i < batch.firstErrorIndex)) {
                    batch.firstError = err;
                    batch.firstErrorIndex = i;
                }
                if (--batch.pending == 0)
                    batch.done.notify_all();
            });
        }
    }
    wake_.notify_all();

    std::unique_lock<std::mutex> lock(batch.mutex);
    batch.done.wait(lock, [&batch] { return batch.pending == 0; });
    if (batch.firstError)
        std::rethrow_exception(batch.firstError);
}

} // namespace exec
} // namespace ucx
