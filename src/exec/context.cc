#include "exec/context.hh"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "exec/task_graph.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "util/logging.hh"

namespace ucx
{

const ExecContext &
ExecContext::serial()
{
    static const ExecContext ctx;
    return ctx;
}

ExecContext
ExecContext::withThreads(size_t threads)
{
    if (threads <= 1)
        return ExecContext();
    return ExecContext(
        std::make_shared<exec::ThreadPool>(threads));
}

ExecContext
ExecContext::fromEnv()
{
    // Caps absurd requests: more workers than this is certainly a
    // typo (e.g. a stray digit), not a real machine.
    constexpr unsigned long maxThreads = 4096;

    size_t threads = 0;
    const char *env = std::getenv("UCX_THREADS");
    if (env != nullptr && *env != '\0') {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        // strtoul accepts a leading '-' by wrapping; reject it
        // explicitly so "-2" doesn't become a huge worker count.
        bool valid = end != nullptr && *end == '\0' &&
                     *env != '-' && v <= maxThreads;
        if (valid)
            threads = static_cast<size_t>(v);
        else
            warn("ignoring invalid UCX_THREADS value '" +
                 std::string(env) +
                 "'; using hardware concurrency");
    }
    // threads == 0 means "auto": one worker per hardware thread.
    if (threads == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        threads = hw > 0 ? hw : 1;
    }
    return withThreads(threads);
}

void
ExecContext::runChunked(
    size_t n, const std::function<void(size_t, size_t)> &chunk) const
{
    using Clock = std::chrono::steady_clock;
    bool timing = obs::enabled();
    Clock::time_point start;
    if (timing)
        start = Clock::now();
    obs::ScopedSpan span("exec.parallel_for");

    size_t workers = pool_->threads();
    size_t chunks = n < workers ? n : workers;
    obs::TraceScope trace("exec.parallel_for");
    if (trace.active()) {
        trace.arg("items", std::to_string(n))
            .arg("chunks", std::to_string(chunks));
    }
    // Each chunk is one graph node; chunks are submitted in index
    // order and joined in submission order (TaskGraph::wait), so
    // the first error in index order is rethrown — the same error
    // the serial loop would have thrown. Running the chunks through
    // a TaskGraph (rather than ThreadPool::run) is what lets nested
    // parallelFor calls scale: the graph's wait() drains ready
    // chunks on the calling thread while workers take the rest.
    {
        TaskGraph graph(*this);
        // Static chunking: chunk j covers a contiguous index range;
        // the first (n % chunks) chunks take one extra index.
        size_t base = n / chunks;
        size_t extra = n % chunks;
        size_t lo = 0;
        for (size_t j = 0; j < chunks; ++j) {
            size_t hi = lo + base + (j < extra ? 1 : 0);
            graph.submit(
                [&chunk, lo, hi] {
                    // Runs on whichever thread picks up the node,
                    // so the event lands on that thread's Perfetto
                    // track.
                    obs::TraceScope chunk_trace("exec.chunk");
                    if (chunk_trace.active()) {
                        chunk_trace.arg("lo", std::to_string(lo))
                            .arg("hi", std::to_string(hi));
                    }
                    chunk(lo, hi);
                },
                "exec.chunk");
            lo = hi;
        }
        graph.wait();
    }

    if (timing) {
        static obs::Counter &calls =
            obs::counter("exec.parallel_for.calls");
        static obs::Counter &items =
            obs::counter("exec.parallel_for.items");
        static obs::Histogram &wall_us =
            obs::histogram("exec.parallel_for.wall_us");
        calls.add(1);
        items.add(n);
        wall_us.observe(std::chrono::duration<double, std::micro>(
                            Clock::now() - start)
                            .count());
    }
}

} // namespace ucx
