/**
 * @file
 * Content-addressed cache keys.
 *
 * A CacheKey is an ordered sequence of fields rendered into one
 * canonical string: a namespace, then every field appended with
 * add(). Values that identify an artifact exactly (a top-module
 * name, a parameter binding) go in *verbatim*, so two distinct
 * bindings can never alias; bulky content (HDL source text) goes in
 * as a 64-bit FNV-1a content hash. Numeric configuration is folded
 * through fingerprint helpers.
 *
 * Domain layers own their key builders (the synth pass manager
 * derives per-pass keys, the engine derives fit keys); this file
 * only provides the canonical encoding.
 */

#ifndef UCX_CACHE_KEY_HH
#define UCX_CACHE_KEY_HH

#include <cstdint>
#include <map>
#include <string>

namespace ucx
{

/** 64-bit FNV-1a hash of a byte range. */
uint64_t fnv1a(const void *data, size_t size,
               uint64_t seed = 0xcbf29ce484222325ull);

/** 64-bit FNV-1a hash of a string. */
uint64_t fnv1a(const std::string &text);

/**
 * Fold a double's bit pattern into a running FNV-1a hash. Used to
 * fingerprint numeric configuration (library delays, fabric
 * parameters) where the exact bits define the artifact.
 *
 * @param seed  Running hash value.
 * @param value Value to fold in.
 * @return The updated hash.
 */
uint64_t fnv1aMix(uint64_t seed, double value);

/** Fold an integer into a running FNV-1a hash. */
uint64_t fnv1aMix(uint64_t seed, uint64_t value);

/** An ordered, canonical, content-addressed artifact key. */
class CacheKey
{
  public:
    /** An empty (invalid) key; ArtifactCache rejects it. */
    CacheKey() = default;

    /**
     * Start a key.
     *
     * @param ns Namespace naming the artifact family ("elab",
     *           "synth", "measure", "fit", ...).
     */
    explicit CacheKey(const std::string &ns) : text_(ns) {}

    /** Append one field verbatim. */
    CacheKey &
    add(const std::string &field)
    {
        text_ += '|';
        text_ += field;
        return *this;
    }

    /** Append an integer field. */
    CacheKey &
    add(int64_t value)
    {
        return add(std::to_string(value));
    }

    /** Append a 64-bit hash field in hex. */
    CacheKey &addHash(uint64_t hash);

    /**
     * Append a parameter binding verbatim, in sorted-name order, as
     * "name=value,..." — the collision-proof part of the key.
     *
     * @param params Parameter name -> bound value.
     */
    CacheKey &addParams(const std::map<std::string, int64_t> &params);

    /**
     * Derive a child key (this key plus one more field); used by the
     * pass manager to key per-pass artifacts off one base key.
     *
     * @param suffix Field appended to the copy.
     * @return The derived key.
     */
    CacheKey
    child(const std::string &suffix) const
    {
        CacheKey k = *this;
        k.add(suffix);
        return k;
    }

    /** @return The canonical rendering. */
    const std::string &str() const { return text_; }

    /** @return True when no namespace was ever set. */
    bool empty() const { return text_.empty(); }

    bool operator==(const CacheKey &other) const
    {
        return text_ == other.text_;
    }

  private:
    std::string text_;
};

} // namespace ucx

#endif // UCX_CACHE_KEY_HH
