/**
 * @file
 * ArtifactCache — a thread-safe, content-addressed memo store for
 * pipeline artifacts (elaboration results, per-pass synthesis
 * artifacts, fitted estimators).
 *
 * Entries are immutable values behind shared_ptr<const T>, keyed by
 * a canonical CacheKey string, with LRU eviction at a fixed entry
 * capacity. Because every producer in this library is deterministic
 * (seed-stable, thread-count-independent by the exec-layer
 * contract), a hit is byte-identical to a recompute — the cache can
 * never change results, only skip work.
 *
 * getOrCompute is *single-flight*: the first caller to miss a key
 * becomes the owner of its computation, concurrent callers of the
 * same key block on the owner's in-flight entry and share its
 * result instead of duplicating the work. One cold computation per
 * key, at any thread count — which also makes the miss counter
 * thread-count-invariant. (Raw get/put callers can still race; the
 * first insert wins and both observe the same stored value.)
 *
 * Hit/miss/eviction counts are exported through ucx::obs
 * ("cache.artifact.{hits,misses,evictions}"), plus
 * "cache.artifact.dedup_wait" for callers that waited on an
 * in-flight computation; all are tracked locally for per-session
 * stats (obs collection may be disabled).
 *
 * The UCX_CACHE environment variable gates caching in benches and
 * examples: "0" disables it (every lookup misses, nothing is
 * stored); anything else leaves it on. UCX_CACHE_CAPACITY overrides
 * the default entry capacity.
 */

#ifndef UCX_CACHE_ARTIFACT_CACHE_HH
#define UCX_CACHE_ARTIFACT_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <unordered_map>
#include <utility>

#include "cache/key.hh"

namespace ucx
{

/** Thread-safe content-addressed artifact store with LRU eviction. */
class ArtifactCache
{
  public:
    /**
     * Create a cache.
     *
     * @param capacity Maximum entry count before LRU eviction;
     *                 must be >= 1.
     * @param enabled  Initial on/off state.
     */
    explicit ArtifactCache(size_t capacity = defaultCapacity(),
                           bool enabled = true);

    /** @return Entry capacity from UCX_CACHE_CAPACITY (default 1024). */
    static size_t defaultCapacity();

    /** @return False iff the UCX_CACHE environment variable is "0". */
    static bool enabledFromEnv();

    /** @return True when lookups and inserts are live. */
    bool enabled() const;

    /** Turn the cache on or off (off: get misses, put drops). */
    void setEnabled(bool on);

    /**
     * Typed lookup.
     *
     * @param key Artifact key (non-empty).
     * @return The stored artifact, or nullptr on miss. A stored
     *         artifact of a different type is an internal bug
     *         (UcxPanic).
     */
    template <typename T>
    std::shared_ptr<const T>
    get(const CacheKey &key)
    {
        return std::static_pointer_cast<const T>(
            getRaw(key, typeid(T)));
    }

    /**
     * Insert an artifact. An existing entry under the same key is
     * kept (first insert wins; values are deterministic duplicates).
     *
     * @param key   Artifact key (non-empty).
     * @param value Immutable artifact.
     */
    template <typename T>
    void
    put(const CacheKey &key, std::shared_ptr<const T> value)
    {
        putRaw(key,
               std::static_pointer_cast<const void>(std::move(value)),
               typeid(T), sizeof(T));
    }

    /**
     * Memoize, single-flight: return the cached artifact, or
     * compute, store, and return it — with concurrent callers of
     * the same key waiting on the one in-flight computation rather
     * than duplicating it.
     *
     * The computation runs outside the cache lock (other keys stay
     * fully concurrent). If the producer throws, the error
     * propagates to the owner and every waiter, and the key is
     * released so a later call retries. With the cache disabled the
     * producer runs unconditionally and nothing is counted or
     * stored.
     *
     * @param key Artifact key.
     * @param fn  Producer returning a T by value.
     * @return The (now cached) artifact.
     */
    template <typename T, typename Fn>
    std::shared_ptr<const T>
    getOrCompute(const CacheKey &key, Fn &&fn)
    {
        auto raw = getOrComputeRaw(
            key, typeid(T),
            [&fn]() -> std::shared_ptr<const void> {
                return std::static_pointer_cast<const void>(
                    std::make_shared<const T>(fn()));
            },
            sizeof(T));
        return std::static_pointer_cast<const T>(raw);
    }

    /** Point-in-time cache statistics. */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        /** getOrCompute callers that waited on an in-flight
         *  computation of their key instead of duplicating it. */
        uint64_t dedupWaits = 0;
        size_t entries = 0;
        size_t capacity = 0;

        /**
         * Shallow byte footprint: per-entry sizeof of the stored
         * artifact (as reported at insert time) plus the key
         * string. A lower bound — heap payloads behind the
         * artifacts (vectors, strings) are not followed.
         */
        size_t approxBytes = 0;

        /** @return hits / (hits + misses), 0 when no lookups. */
        double hitRate() const;
    };

    /** @return Current statistics. */
    Stats stats() const;

    /** Drop every entry (statistics are kept). */
    void clear();

    /**
     * Type-erased lookup — the layer under get<T>(), used directly
     * by callers that carry the artifact type at runtime (the pass
     * manager's type-erased Pass hooks).
     *
     * @param key  Artifact key (non-empty).
     * @param type Expected dynamic type of the stored artifact.
     * @return The artifact, or nullptr on miss.
     */
    std::shared_ptr<const void> getRaw(const CacheKey &key,
                                       const std::type_info &type);

    /**
     * Type-erased insert — the layer under put<T>().
     *
     * @param key   Artifact key (non-empty).
     * @param value Immutable artifact.
     * @param type  Dynamic type of the artifact.
     * @param bytes Shallow artifact size (sizeof the stored type);
     *              0 when the caller cannot tell.
     */
    void putRaw(const CacheKey &key,
                std::shared_ptr<const void> value,
                const std::type_info &type, size_t bytes = 0);

    /**
     * Type-erased single-flight memoization — the layer under
     * getOrCompute<T>(), used directly by the pass manager, which
     * carries artifact types at runtime.
     *
     * Exactly one concurrent caller per key runs @p produce;
     * the others wait and share the result (and count one
     * "cache.artifact.dedup_wait" each). A throwing producer fails
     * owner and waiters alike and releases the key for retry.
     *
     * @param key     Artifact key (non-empty).
     * @param type    Dynamic type of the artifact.
     * @param produce Producer returning the artifact (non-null).
     * @param bytes   Shallow artifact size for footprint stats.
     * @return The (now cached) artifact, never null.
     */
    std::shared_ptr<const void> getOrComputeRaw(
        const CacheKey &key, const std::type_info &type,
        const std::function<std::shared_ptr<const void>()> &produce,
        size_t bytes = 0);

  private:
    struct Flight;

    /** putRaw minus locking/gating: insert assuming mutex_ held. */
    void insertLocked(const CacheKey &key,
                      std::shared_ptr<const void> value,
                      const std::type_info &type, size_t bytes);

    struct Entry
    {
        std::shared_ptr<const void> value;
        const std::type_info *type = nullptr;
        size_t bytes = 0; ///< Shallow footprint incl. the key.
        std::list<std::string>::iterator lruPos;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> entries_;
    /** Keys whose computation is running right now; concurrent
     *  getOrCompute callers of such a key wait on the Flight. */
    std::unordered_map<std::string, std::shared_ptr<Flight>>
        inflight_;
    std::list<std::string> lru_; ///< Front = most recently used.
    size_t capacity_;
    bool enabled_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t dedupWaits_ = 0;
    size_t approxBytes_ = 0;
};

} // namespace ucx

#endif // UCX_CACHE_ARTIFACT_CACHE_HH
