/**
 * @file
 * ArtifactCache — a thread-safe, content-addressed, two-tier memo
 * store for pipeline artifacts (elaboration results, per-pass
 * synthesis artifacts, fitted estimators).
 *
 * The memory tier holds immutable values behind shared_ptr<const T>,
 * keyed by a canonical CacheKey string, with LRU eviction at a fixed
 * entry capacity. Because every producer in this library is
 * deterministic (seed-stable, thread-count-independent by the
 * exec-layer contract), a hit is byte-identical to a recompute — the
 * cache can never change results, only skip work.
 *
 * The optional disk tier (UCX_CACHE_DIR, or the constructor's
 * disk_dir) persists artifacts across processes through the ucx::io
 * serde layer: on a memory miss the owner probes the
 * content-addressed file store (io::DiskStore) and decodes a hit
 * instead of recomputing; a cold computation is encoded once and
 * written through. Only types registered with the SerdeRegistry
 * (registerArtifactSerdes()) use the disk tier — unregistered types
 * silently stay memory-only. A corrupt, truncated, or
 * version-mismatched entry counts as "corrupt", is removed, and
 * degrades to a recompute — never an error. Eviction from the memory
 * tier leaves disk entries in place, so evicted artifacts come back
 * as disk hits.
 *
 * getOrCompute is *single-flight*: the first caller to miss a key
 * becomes the owner of its computation, concurrent callers of the
 * same key block on the owner's in-flight entry and share its
 * result instead of duplicating the work. One cold computation per
 * key, at any thread count — which also makes the miss counter
 * thread-count-invariant. (Raw get/put callers can still race; the
 * first insert wins and both observe the same stored value.)
 *
 * Hit/miss/eviction counts are exported through ucx::obs
 * ("cache.artifact.{hits,misses,evictions}"), plus
 * "cache.artifact.dedup_wait" for callers that waited on an
 * in-flight computation; all are tracked locally for per-session
 * stats (obs collection may be disabled).
 *
 * Hit/miss/eviction counts are exported through ucx::obs as before;
 * the disk tier adds "cache.disk.{hits,misses,writes,bytes,corrupt}"
 * counters and per-operation "cache.disk.read"/"cache.disk.write"
 * trace spans.
 *
 * The UCX_CACHE environment variable gates caching in benches and
 * examples: "0" disables it (every lookup misses, nothing is
 * stored); anything else leaves it on. UCX_CACHE_CAPACITY overrides
 * the default entry capacity; UCX_CACHE_DIR enables the disk tier.
 */

#ifndef UCX_CACHE_ARTIFACT_CACHE_HH
#define UCX_CACHE_ARTIFACT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <unordered_map>
#include <utility>

#include "cache/key.hh"

namespace ucx
{

namespace io
{
class DiskStore;      // src/io — content-addressed file tier
struct ArtifactCodec; // src/io — type-erased serde codec
}

/** Thread-safe content-addressed artifact store with LRU eviction. */
class ArtifactCache
{
  public:
    /**
     * Create a cache.
     *
     * @param capacity Maximum entry count before LRU eviction;
     *                 must be >= 1.
     * @param enabled  Initial on/off state.
     * @param disk_dir Disk-tier directory; "" keeps the cache
     *                 memory-only.
     */
    explicit ArtifactCache(size_t capacity = defaultCapacity(),
                           bool enabled = true,
                           std::string disk_dir = diskDirFromEnv());

    ~ArtifactCache();

    /** @return Entry capacity from UCX_CACHE_CAPACITY (default 1024). */
    static size_t defaultCapacity();

    /** @return False iff the UCX_CACHE environment variable is "0". */
    static bool enabledFromEnv();

    /** @return UCX_CACHE_DIR, or "" when unset (disk tier off). */
    static std::string diskDirFromEnv();

    /** @return True when a disk tier is attached. */
    bool diskEnabled() const { return disk_ != nullptr; }

    /** @return The disk-tier directory ("" when memory-only). */
    std::string diskDir() const;

    /** @return True when lookups and inserts are live. */
    bool enabled() const;

    /** Turn the cache on or off (off: get misses, put drops). */
    void setEnabled(bool on);

    /**
     * Typed lookup.
     *
     * @param key Artifact key (non-empty).
     * @return The stored artifact, or nullptr on miss. A stored
     *         artifact of a different type is an internal bug
     *         (UcxPanic).
     */
    template <typename T>
    std::shared_ptr<const T>
    get(const CacheKey &key)
    {
        return std::static_pointer_cast<const T>(
            getRaw(key, typeid(T)));
    }

    /**
     * Insert an artifact. An existing entry under the same key is
     * kept (first insert wins; values are deterministic duplicates).
     *
     * @param key   Artifact key (non-empty).
     * @param value Immutable artifact.
     */
    template <typename T>
    void
    put(const CacheKey &key, std::shared_ptr<const T> value)
    {
        putRaw(key,
               std::static_pointer_cast<const void>(std::move(value)),
               typeid(T), sizeof(T));
    }

    /**
     * Memoize, single-flight: return the cached artifact, or
     * compute, store, and return it — with concurrent callers of
     * the same key waiting on the one in-flight computation rather
     * than duplicating it.
     *
     * The computation runs outside the cache lock (other keys stay
     * fully concurrent). If the producer throws, the error
     * propagates to the owner and every waiter, and the key is
     * released so a later call retries. With the cache disabled the
     * producer runs unconditionally and nothing is counted or
     * stored.
     *
     * @param key Artifact key.
     * @param fn  Producer returning a T by value.
     * @return The (now cached) artifact.
     */
    template <typename T, typename Fn>
    std::shared_ptr<const T>
    getOrCompute(const CacheKey &key, Fn &&fn)
    {
        auto raw = getOrComputeRaw(
            key, typeid(T),
            [&fn]() -> std::shared_ptr<const void> {
                return std::static_pointer_cast<const void>(
                    std::make_shared<const T>(fn()));
            },
            sizeof(T));
        return std::static_pointer_cast<const T>(raw);
    }

    /** Point-in-time cache statistics. */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        /** getOrCompute callers that waited on an in-flight
         *  computation of their key instead of duplicating it. */
        uint64_t dedupWaits = 0;
        size_t entries = 0;
        size_t capacity = 0;

        /**
         * Byte footprint of the memory tier. For artifact types
         * with a registered serde codec this is the exact encoded
         * frame size (plus the key string); for unregistered types
         * it falls back to the shallow sizeof reported at insert
         * time, a lower bound that does not follow heap payloads.
         */
        size_t approxBytes = 0;

        uint64_t diskHits = 0;    ///< Artifacts decoded from disk.
        uint64_t diskMisses = 0;  ///< Disk probes finding no entry.
        uint64_t diskWrites = 0;  ///< Entries written through.
        uint64_t diskCorrupt = 0; ///< Malformed entries removed.
        uint64_t diskBytes = 0;   ///< Bytes written to disk.

        /** @return hits / (hits + misses), 0 when no lookups. */
        double hitRate() const;
    };

    /** @return Current statistics. */
    Stats stats() const;

    /** Drop every entry (statistics are kept). */
    void clear();

    /**
     * Type-erased lookup — the layer under get<T>(), used directly
     * by callers that carry the artifact type at runtime (the pass
     * manager's type-erased Pass hooks).
     *
     * @param key  Artifact key (non-empty).
     * @param type Expected dynamic type of the stored artifact.
     * @return The artifact, or nullptr on miss.
     */
    std::shared_ptr<const void> getRaw(const CacheKey &key,
                                       const std::type_info &type);

    /**
     * Type-erased insert — the layer under put<T>().
     *
     * @param key   Artifact key (non-empty).
     * @param value Immutable artifact.
     * @param type  Dynamic type of the artifact.
     * @param bytes Shallow artifact size (sizeof the stored type);
     *              0 when the caller cannot tell.
     */
    void putRaw(const CacheKey &key,
                std::shared_ptr<const void> value,
                const std::type_info &type, size_t bytes = 0);

    /**
     * Type-erased single-flight memoization — the layer under
     * getOrCompute<T>(), used directly by the pass manager, which
     * carries artifact types at runtime.
     *
     * Exactly one concurrent caller per key runs @p produce;
     * the others wait and share the result (and count one
     * "cache.artifact.dedup_wait" each). A throwing producer fails
     * owner and waiters alike and releases the key for retry.
     *
     * @param key     Artifact key (non-empty).
     * @param type    Dynamic type of the artifact.
     * @param produce Producer returning the artifact (non-null).
     * @param bytes   Shallow artifact size for footprint stats.
     * @return The (now cached) artifact, never null.
     */
    std::shared_ptr<const void> getOrComputeRaw(
        const CacheKey &key, const std::type_info &type,
        const std::function<std::shared_ptr<const void>()> &produce,
        size_t bytes = 0);

  private:
    struct Flight;

    /** putRaw minus locking/gating: insert assuming mutex_ held. */
    void insertLocked(const CacheKey &key,
                      std::shared_ptr<const void> value,
                      const std::type_info &type, size_t bytes);

    /**
     * Probe the disk tier (no locks held). A malformed frame counts
     * as corrupt and removes the entry file.
     *
     * @param key        Artifact key.
     * @param codec      Registered codec of the artifact type.
     * @param framed_out Receives the frame bytes on a hit (for byte
     *                   accounting); may be null.
     * @return The decoded artifact, or null on miss/corruption.
     */
    std::shared_ptr<const void>
    diskProbe(const CacheKey &key, const io::ArtifactCodec &codec,
              std::string *framed_out);

    /** Write one encoded frame through to disk (no locks held). */
    void diskPublish(const CacheKey &key, const std::string &framed);

    struct Entry
    {
        std::shared_ptr<const void> value;
        const std::type_info *type = nullptr;
        size_t bytes = 0; ///< Shallow footprint incl. the key.
        std::list<std::string>::iterator lruPos;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> entries_;
    /** Keys whose computation is running right now; concurrent
     *  getOrCompute callers of such a key wait on the Flight. */
    std::unordered_map<std::string, std::shared_ptr<Flight>>
        inflight_;
    std::list<std::string> lru_; ///< Front = most recently used.
    size_t capacity_;
    bool enabled_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t dedupWaits_ = 0;
    size_t approxBytes_ = 0;

    /** Disk tier; null when memory-only. All I/O runs outside
     *  mutex_, so its statistics are atomics, not guarded fields. */
    std::unique_ptr<io::DiskStore> disk_;
    std::atomic<uint64_t> diskHits_{0};
    std::atomic<uint64_t> diskMisses_{0};
    std::atomic<uint64_t> diskWrites_{0};
    std::atomic<uint64_t> diskCorrupt_{0};
    std::atomic<uint64_t> diskBytes_{0};
};

} // namespace ucx

#endif // UCX_CACHE_ARTIFACT_CACHE_HH
