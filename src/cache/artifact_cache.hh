/**
 * @file
 * ArtifactCache — a thread-safe, content-addressed memo store for
 * pipeline artifacts (elaboration results, per-pass synthesis
 * artifacts, fitted estimators).
 *
 * Entries are immutable values behind shared_ptr<const T>, keyed by
 * a canonical CacheKey string, with LRU eviction at a fixed entry
 * capacity. Because every producer in this library is deterministic
 * (seed-stable, thread-count-independent by the exec-layer
 * contract), a hit is byte-identical to a recompute — the cache can
 * never change results, only skip work. Concurrent misses on the
 * same key may compute twice; the first insert wins and both callers
 * observe the same stored value.
 *
 * Hit/miss/eviction counts are exported through ucx::obs
 * ("cache.artifact.{hits,misses,evictions}") and tracked locally for
 * per-session stats (obs collection may be disabled).
 *
 * The UCX_CACHE environment variable gates caching in benches and
 * examples: "0" disables it (every lookup misses, nothing is
 * stored); anything else leaves it on. UCX_CACHE_CAPACITY overrides
 * the default entry capacity.
 */

#ifndef UCX_CACHE_ARTIFACT_CACHE_HH
#define UCX_CACHE_ARTIFACT_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <typeinfo>
#include <unordered_map>
#include <utility>

#include "cache/key.hh"

namespace ucx
{

/** Thread-safe content-addressed artifact store with LRU eviction. */
class ArtifactCache
{
  public:
    /**
     * Create a cache.
     *
     * @param capacity Maximum entry count before LRU eviction;
     *                 must be >= 1.
     * @param enabled  Initial on/off state.
     */
    explicit ArtifactCache(size_t capacity = defaultCapacity(),
                           bool enabled = true);

    /** @return Entry capacity from UCX_CACHE_CAPACITY (default 1024). */
    static size_t defaultCapacity();

    /** @return False iff the UCX_CACHE environment variable is "0". */
    static bool enabledFromEnv();

    /** @return True when lookups and inserts are live. */
    bool enabled() const;

    /** Turn the cache on or off (off: get misses, put drops). */
    void setEnabled(bool on);

    /**
     * Typed lookup.
     *
     * @param key Artifact key (non-empty).
     * @return The stored artifact, or nullptr on miss. A stored
     *         artifact of a different type is an internal bug
     *         (UcxPanic).
     */
    template <typename T>
    std::shared_ptr<const T>
    get(const CacheKey &key)
    {
        return std::static_pointer_cast<const T>(
            getRaw(key, typeid(T)));
    }

    /**
     * Insert an artifact. An existing entry under the same key is
     * kept (first insert wins; values are deterministic duplicates).
     *
     * @param key   Artifact key (non-empty).
     * @param value Immutable artifact.
     */
    template <typename T>
    void
    put(const CacheKey &key, std::shared_ptr<const T> value)
    {
        putRaw(key,
               std::static_pointer_cast<const void>(std::move(value)),
               typeid(T), sizeof(T));
    }

    /**
     * Memoize: return the cached artifact or compute, store, and
     * return it.
     *
     * The computation runs outside the cache lock, so concurrent
     * misses on one key may both compute; determinism makes the
     * results identical and the first insert wins.
     *
     * @param key Artifact key.
     * @param fn  Producer returning a T by value.
     * @return The (now cached) artifact.
     */
    template <typename T, typename Fn>
    std::shared_ptr<const T>
    getOrCompute(const CacheKey &key, Fn &&fn)
    {
        if (auto hit = get<T>(key))
            return hit;
        auto value = std::make_shared<const T>(fn());
        put<T>(key, value);
        if (auto stored = get<T>(key))
            return stored; // share the winning insert
        return value;      // cache disabled or already evicted
    }

    /** Point-in-time cache statistics. */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        size_t entries = 0;
        size_t capacity = 0;

        /**
         * Shallow byte footprint: per-entry sizeof of the stored
         * artifact (as reported at insert time) plus the key
         * string. A lower bound — heap payloads behind the
         * artifacts (vectors, strings) are not followed.
         */
        size_t approxBytes = 0;

        /** @return hits / (hits + misses), 0 when no lookups. */
        double hitRate() const;
    };

    /** @return Current statistics. */
    Stats stats() const;

    /** Drop every entry (statistics are kept). */
    void clear();

    /**
     * Type-erased lookup — the layer under get<T>(), used directly
     * by callers that carry the artifact type at runtime (the pass
     * manager's type-erased Pass hooks).
     *
     * @param key  Artifact key (non-empty).
     * @param type Expected dynamic type of the stored artifact.
     * @return The artifact, or nullptr on miss.
     */
    std::shared_ptr<const void> getRaw(const CacheKey &key,
                                       const std::type_info &type);

    /**
     * Type-erased insert — the layer under put<T>().
     *
     * @param key   Artifact key (non-empty).
     * @param value Immutable artifact.
     * @param type  Dynamic type of the artifact.
     * @param bytes Shallow artifact size (sizeof the stored type);
     *              0 when the caller cannot tell.
     */
    void putRaw(const CacheKey &key,
                std::shared_ptr<const void> value,
                const std::type_info &type, size_t bytes = 0);

  private:
    struct Entry
    {
        std::shared_ptr<const void> value;
        const std::type_info *type = nullptr;
        size_t bytes = 0; ///< Shallow footprint incl. the key.
        std::list<std::string>::iterator lruPos;
    };

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Entry> entries_;
    std::list<std::string> lru_; ///< Front = most recently used.
    size_t capacity_;
    bool enabled_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    size_t approxBytes_ = 0;
};

} // namespace ucx

#endif // UCX_CACHE_ARTIFACT_CACHE_HH
