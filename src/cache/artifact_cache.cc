#include "cache/artifact_cache.hh"

#include <condition_variable>
#include <cstdlib>

#include "io/disk_store.hh"
#include "io/registry.hh"
#include "io/serde.hh"
#include "obs/metrics.hh"
#include "obs/tracelog.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** Trim long canonical keys for trace-event attributes. */
std::string
traceKey(const CacheKey &key)
{
    const std::string &s = key.str();
    constexpr size_t kMax = 96;
    if (s.size() <= kMax)
        return s;
    return s.substr(0, kMax) + "...";
}

obs::Counter &
hitCounter()
{
    static obs::Counter &c = obs::counter("cache.artifact.hits");
    return c;
}

obs::Counter &
missCounter()
{
    static obs::Counter &c = obs::counter("cache.artifact.misses");
    return c;
}

obs::Counter &
evictionCounter()
{
    static obs::Counter &c = obs::counter("cache.artifact.evictions");
    return c;
}

obs::Counter &
dedupWaitCounter()
{
    static obs::Counter &c =
        obs::counter("cache.artifact.dedup_wait");
    return c;
}

obs::Counter &
diskHitCounter()
{
    static obs::Counter &c = obs::counter("cache.disk.hits");
    return c;
}

obs::Counter &
diskMissCounter()
{
    static obs::Counter &c = obs::counter("cache.disk.misses");
    return c;
}

obs::Counter &
diskWriteCounter()
{
    static obs::Counter &c = obs::counter("cache.disk.writes");
    return c;
}

obs::Counter &
diskByteCounter()
{
    static obs::Counter &c = obs::counter("cache.disk.bytes");
    return c;
}

obs::Counter &
diskCorruptCounter()
{
    static obs::Counter &c = obs::counter("cache.disk.corrupt");
    return c;
}

} // namespace

/**
 * One in-flight computation. The owner publishes value-or-error
 * under `mutex` and notifies; waiters block on `cv` until
 * `finished`. Lives behind a shared_ptr so waiters stay safe after
 * the cache erases the inflight_ entry.
 */
struct ArtifactCache::Flight
{
    std::mutex mutex;
    std::condition_variable cv;
    bool finished = false;
    std::shared_ptr<const void> value;
    std::exception_ptr error;
};

ArtifactCache::ArtifactCache(size_t capacity, bool enabled,
                             std::string disk_dir)
    : capacity_(capacity), enabled_(enabled)
{
    require(capacity >= 1, "cache capacity must be >= 1");
    if (!disk_dir.empty())
        disk_ = std::make_unique<io::DiskStore>(std::move(disk_dir));
}

ArtifactCache::~ArtifactCache() = default;

std::string
ArtifactCache::diskDirFromEnv()
{
    return io::DiskStore::dirFromEnv();
}

std::string
ArtifactCache::diskDir() const
{
    return disk_ ? disk_->dir() : std::string();
}

size_t
ArtifactCache::defaultCapacity()
{
    const char *env = std::getenv("UCX_CACHE_CAPACITY");
    if (env) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end && *end == '\0' && v >= 1)
            return static_cast<size_t>(v);
    }
    return 1024;
}

bool
ArtifactCache::enabledFromEnv()
{
    const char *env = std::getenv("UCX_CACHE");
    return !(env && std::string(env) == "0");
}

bool
ArtifactCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return enabled_;
}

void
ArtifactCache::setEnabled(bool on)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_ = on;
}

std::shared_ptr<const void>
ArtifactCache::diskProbe(const CacheKey &key,
                         const io::ArtifactCodec &codec,
                         std::string *framed_out)
{
    obs::TraceScope scope("cache.disk.read");
    if (scope.active())
        scope.arg("key", traceKey(key));
    std::string framed;
    io::DiskStore::ReadStatus status = disk_->read(key.str(), framed);
    if (status == io::DiskStore::ReadStatus::Hit) {
        try {
            std::shared_ptr<const void> value = codec.decode(framed);
            diskHits_.fetch_add(1, std::memory_order_relaxed);
            diskHitCounter().add(1);
            if (scope.active())
                scope.arg("outcome", "hit");
            if (framed_out)
                *framed_out = std::move(framed);
            return value;
        } catch (const io::SerdeError &) {
            // A frame the store's container checks let through but
            // the codec rejects (bad checksum, truncated payload,
            // schema version bump): treat exactly like a torn file.
            disk_->remove(key.str());
            status = io::DiskStore::ReadStatus::Corrupt;
        }
    }
    if (status == io::DiskStore::ReadStatus::Corrupt) {
        diskCorrupt_.fetch_add(1, std::memory_order_relaxed);
        diskCorruptCounter().add(1);
        if (scope.active())
            scope.arg("outcome", "corrupt");
    } else {
        diskMisses_.fetch_add(1, std::memory_order_relaxed);
        diskMissCounter().add(1);
        if (scope.active())
            scope.arg("outcome", "miss");
    }
    return nullptr;
}

void
ArtifactCache::diskPublish(const CacheKey &key,
                           const std::string &framed)
{
    obs::TraceScope scope("cache.disk.write");
    if (scope.active())
        scope.arg("key", traceKey(key));
    if (disk_->write(key.str(), framed)) {
        diskWrites_.fetch_add(1, std::memory_order_relaxed);
        diskWriteCounter().add(1);
        diskBytes_.fetch_add(framed.size(),
                             std::memory_order_relaxed);
        diskByteCounter().add(
            static_cast<uint64_t>(framed.size()));
    }
}

std::shared_ptr<const void>
ArtifactCache::getRaw(const CacheKey &key, const std::type_info &type)
{
    require(!key.empty(), "cache lookup with an empty key");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!enabled_)
            return nullptr;
        auto it = entries_.find(key.str());
        if (it != entries_.end()) {
            ensure(*it->second.type == type,
                   "cache key '" + key.str() +
                       "' holds an artifact of another type");
            lru_.splice(lru_.begin(), lru_, it->second.lruPos);
            ++hits_;
            hitCounter().add(1);
            if (obs::traceEnabled()) {
                obs::traceInstant("cache.hit",
                                  {{"key", traceKey(key)}});
            }
            return it->second.value;
        }
        ++misses_;
        missCounter().add(1);
        if (obs::traceEnabled())
            obs::traceInstant("cache.miss", {{"key", traceKey(key)}});
    }

    // Memory miss: fall through to the disk tier, outside the lock.
    // Concurrent probes of one key may both read the file; the first
    // memory insert wins and both return the same stored value.
    if (!disk_)
        return nullptr;
    const io::ArtifactCodec *codec =
        io::SerdeRegistry::global().byType(type);
    if (codec == nullptr)
        return nullptr;
    std::string framed;
    std::shared_ptr<const void> value =
        diskProbe(key, *codec, &framed);
    if (value == nullptr)
        return nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (enabled_)
            insertLocked(key, value, type, framed.size());
    }
    return value;
}

void
ArtifactCache::putRaw(const CacheKey &key,
                      std::shared_ptr<const void> value,
                      const std::type_info &type, size_t bytes)
{
    require(!key.empty(), "cache insert with an empty key");
    ensure(value != nullptr, "cache insert of a null artifact");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!enabled_)
            return;
    }
    // Encode outside the lock: the frame size is the real footprint
    // of serde-covered types, and doubles as the disk write-through.
    const io::ArtifactCodec *codec =
        io::SerdeRegistry::global().byType(type);
    std::string framed;
    if (codec != nullptr) {
        framed = codec->encode(value);
        bytes = framed.size();
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!enabled_)
            return;
        insertLocked(key, value, type, bytes);
    }
    if (disk_ && codec != nullptr)
        diskPublish(key, framed);
}

void
ArtifactCache::insertLocked(const CacheKey &key,
                            std::shared_ptr<const void> value,
                            const std::type_info &type, size_t bytes)
{
    auto it = entries_.find(key.str());
    if (it != entries_.end()) {
        // First insert wins: concurrent misses computed identical
        // values, so keeping the stored one is both correct and
        // keeps existing shared_ptr holders coherent.
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return;
    }
    lru_.push_front(key.str());
    Entry entry;
    entry.value = std::move(value);
    entry.type = &type;
    entry.bytes = bytes + key.str().size();
    entry.lruPos = lru_.begin();
    approxBytes_ += entry.bytes;
    entries_.emplace(key.str(), std::move(entry));
    while (entries_.size() > capacity_) {
        auto victim = entries_.find(lru_.back());
        ensure(victim != entries_.end(),
               "LRU list out of sync with the entry map");
        approxBytes_ -= victim->second.bytes;
        entries_.erase(victim);
        lru_.pop_back();
        ++evictions_;
        evictionCounter().add(1);
    }
    if (obs::enabled()) {
        obs::gauge("cache.artifact.bytes")
            .set(static_cast<double>(approxBytes_));
    }
}

std::shared_ptr<const void>
ArtifactCache::getOrComputeRaw(
    const CacheKey &key, const std::type_info &type,
    const std::function<std::shared_ptr<const void>()> &produce,
    size_t bytes)
{
    require(!key.empty(), "cache lookup with an empty key");

    std::shared_ptr<Flight> flight;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!enabled_) {
            // Fall through to an uncounted, unstored computation.
        } else {
            auto it = entries_.find(key.str());
            if (it != entries_.end()) {
                ensure(*it->second.type == type,
                       "cache key '" + key.str() +
                           "' holds an artifact of another type");
                lru_.splice(lru_.begin(), lru_, it->second.lruPos);
                ++hits_;
                hitCounter().add(1);
                if (obs::traceEnabled()) {
                    obs::traceInstant("cache.hit",
                                      {{"key", traceKey(key)}});
                }
                return it->second.value;
            }
            auto inserted = inflight_.try_emplace(key.str());
            if (inserted.second) {
                // We own the computation: this is the one miss the
                // key will ever cost, at any thread count.
                inserted.first->second = std::make_shared<Flight>();
                owner = true;
                ++misses_;
                missCounter().add(1);
                if (obs::traceEnabled()) {
                    obs::traceInstant("cache.miss",
                                      {{"key", traceKey(key)}});
                }
            } else {
                ++dedupWaits_;
                dedupWaitCounter().add(1);
                if (obs::traceEnabled()) {
                    obs::traceInstant("cache.dedup_wait",
                                      {{"key", traceKey(key)}});
                }
            }
            flight = inserted.first->second;
        }
    }

    if (flight && !owner) {
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->cv.wait(lock, [&flight] { return flight->finished; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        return flight->value;
    }

    // Owner (or disabled cache): all work happens outside every
    // lock, so other keys stay fully concurrent and the producer is
    // free to use the cache itself. Being the single Flight owner
    // also makes this the one place that touches the disk tier for
    // the key — one probe, one write, at any thread count.
    const io::ArtifactCodec *codec =
        flight ? io::SerdeRegistry::global().byType(type) : nullptr;

    std::shared_ptr<const void> value;
    std::exception_ptr error;
    std::string framed;
    bool from_disk = false;
    if (codec != nullptr && disk_) {
        value = diskProbe(key, *codec, &framed);
        from_disk = value != nullptr;
    }
    if (value == nullptr) {
        try {
            value = produce();
            ensure(value != nullptr,
                   "cache producer returned a null artifact");
            if (codec != nullptr)
                framed = codec->encode(value);
        } catch (...) {
            error = std::current_exception();
        }
    }
    if (!framed.empty())
        bytes = framed.size();

    if (flight) {
        bool stored = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(key.str());
            // A failed key is released (not cached), so a later
            // call retries the computation.
            if (!error && enabled_) {
                insertLocked(key, value, type, bytes);
                stored = true;
            }
        }
        {
            std::lock_guard<std::mutex> lock(flight->mutex);
            flight->value = value;
            flight->error = error;
            flight->finished = true;
        }
        flight->cv.notify_all();
        if (stored && !from_disk && codec != nullptr && disk_)
            diskPublish(key, framed);
    }

    if (error)
        std::rethrow_exception(error);
    return value;
}

double
ArtifactCache::Stats::hitRate() const
{
    uint64_t lookups = hits + misses;
    if (lookups == 0)
        return 0.0;
    return static_cast<double>(hits) / static_cast<double>(lookups);
}

ArtifactCache::Stats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.dedupWaits = dedupWaits_;
    s.entries = entries_.size();
    s.capacity = capacity_;
    s.approxBytes = approxBytes_;
    s.diskHits = diskHits_.load(std::memory_order_relaxed);
    s.diskMisses = diskMisses_.load(std::memory_order_relaxed);
    s.diskWrites = diskWrites_.load(std::memory_order_relaxed);
    s.diskCorrupt = diskCorrupt_.load(std::memory_order_relaxed);
    s.diskBytes = diskBytes_.load(std::memory_order_relaxed);
    return s;
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    approxBytes_ = 0;
    if (obs::enabled())
        obs::gauge("cache.artifact.bytes").set(0.0);
}

} // namespace ucx
