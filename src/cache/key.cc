#include "cache/key.hh"

#include <cstring>

namespace ucx
{

uint64_t
fnv1a(const void *data, size_t size, uint64_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

uint64_t
fnv1a(const std::string &text)
{
    return fnv1a(text.data(), text.size());
}

uint64_t
fnv1aMix(uint64_t seed, double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1aMix(seed, bits);
}

uint64_t
fnv1aMix(uint64_t seed, uint64_t value)
{
    // One multiply round before absorbing the value: plain FNV
    // folds the seed in by XOR with the first byte only, making
    // mix(a, b) == mix(b, a) whenever the operands differ in just
    // their low bytes.
    seed *= 0x100000001b3ull;
    return fnv1a(&value, sizeof(value), seed);
}

CacheKey &
CacheKey::addHash(uint64_t hash)
{
    static const char digits[] = "0123456789abcdef";
    char buf[16];
    for (int i = 15; i >= 0; --i) {
        buf[i] = digits[hash & 0xf];
        hash >>= 4;
    }
    text_ += '|';
    text_.append(buf, 16);
    return *this;
}

CacheKey &
CacheKey::addParams(const std::map<std::string, int64_t> &params)
{
    text_ += '|';
    bool first = true;
    for (const auto &[name, value] : params) {
        if (!first)
            text_ += ',';
        first = false;
        text_ += name;
        text_ += '=';
        text_ += std::to_string(value);
    }
    return *this;
}

} // namespace ucx
