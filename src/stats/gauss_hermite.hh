/**
 * @file
 * Gauss-Hermite quadrature nodes and weights.
 *
 * Backs the adaptive-quadrature NLME fitter that cross-checks the
 * analytic marginal likelihood of the µComplexity model.
 */

#ifndef UCX_STATS_GAUSS_HERMITE_HH
#define UCX_STATS_GAUSS_HERMITE_HH

#include <cstddef>
#include <vector>

namespace ucx
{

/** One Gauss-Hermite quadrature rule. */
struct GaussHermiteRule
{
    std::vector<double> nodes;   ///< Abscissae x_i.
    std::vector<double> weights; ///< Weights w_i for weight e^{-x^2}.
};

/**
 * Compute the n-point Gauss-Hermite rule (physicists' convention,
 * weight function e^{-x^2}) by Newton iteration on the Hermite
 * recurrence.
 *
 * @param n Number of nodes; 1 <= n <= 64.
 * @return The rule; integral f(x) e^{-x^2} dx ~= sum w_i f(x_i).
 */
GaussHermiteRule gaussHermite(size_t n);

/**
 * The n-point rule from a process-wide compute-once table.
 *
 * The Newton solve behind gaussHermite() costs O(n^2) per call and
 * used to run once per likelihood-evaluating thread; the cached
 * table computes each order exactly once (thread-safe, bit-identical
 * to a fresh gaussHermite(n) call) and hands out a stable reference.
 *
 * @param n Number of nodes; 1 <= n <= 64.
 * @return The cached rule; valid for the process lifetime.
 */
const GaussHermiteRule &gaussHermiteCached(size_t n);

/**
 * Integrate f against a standard normal density using an n-point
 * rule: E[f(Z)], Z ~ N(0,1).
 *
 * @param rule Precomputed rule.
 * @param f    Integrand evaluated at rescaled nodes.
 * @return The quadrature approximation of E[f(Z)].
 */
template <typename F>
double
normalExpectation(const GaussHermiteRule &rule, F &&f)
{
    // E[f(Z)] = (1/sqrt(pi)) * sum w_i f(sqrt(2) x_i).
    double sum = 0.0;
    for (size_t i = 0; i < rule.nodes.size(); ++i)
        sum += rule.weights[i] * f(1.4142135623730951 * rule.nodes[i]);
    return sum / 1.7724538509055160; // sqrt(pi)
}

} // namespace ucx

#endif // UCX_STATS_GAUSS_HERMITE_HH
