/**
 * @file
 * One-sample Kolmogorov-Smirnov goodness-of-fit test; used by the
 * property tests to check that sampled productivities/errors really
 * follow the lognormal laws assumed by the model.
 */

#ifndef UCX_STATS_KS_TEST_HH
#define UCX_STATS_KS_TEST_HH

#include <functional>
#include <vector>

namespace ucx
{

/** Result of a one-sample Kolmogorov-Smirnov test. */
struct KsResult
{
    double statistic = 0.0; ///< Supremum distance D_n.
    double pValue = 0.0;    ///< Asymptotic p-value.
};

/**
 * One-sample KS test against a continuous cdf.
 *
 * @param sample Observations (copied and sorted internally).
 * @param cdf    Hypothesized cumulative distribution function.
 * @return Statistic and asymptotic p-value.
 */
KsResult ksTest(std::vector<double> sample,
                const std::function<double(double)> &cdf);

} // namespace ucx

#endif // UCX_STATS_KS_TEST_HH
