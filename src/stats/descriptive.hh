/**
 * @file
 * Descriptive statistics over samples: moments, quantiles, and the
 * correlation helpers used in tests and reports.
 */

#ifndef UCX_STATS_DESCRIPTIVE_HH
#define UCX_STATS_DESCRIPTIVE_HH

#include <vector>

namespace ucx
{

/** @return Arithmetic mean; sample must be non-empty. */
double mean(const std::vector<double> &xs);

/**
 * @param xs Sample with at least two elements.
 * @return Unbiased (n-1) sample variance.
 */
double variance(const std::vector<double> &xs);

/** @return sqrt(variance(xs)). */
double stddev(const std::vector<double> &xs);

/**
 * Empirical quantile with linear interpolation (type-7, the R
 * default).
 *
 * @param xs Non-empty sample (copied and sorted internally).
 * @param p  Probability in [0, 1].
 * @return The p-quantile.
 */
double quantile(std::vector<double> xs, double p);

/** @return The sample median. */
double median(std::vector<double> xs);

/**
 * Pearson correlation coefficient of two equally-sized samples with
 * at least two elements and non-zero variance.
 */
double pearson(const std::vector<double> &xs,
               const std::vector<double> &ys);

/**
 * Spearman rank correlation (average ranks for ties).
 */
double spearman(const std::vector<double> &xs,
                const std::vector<double> &ys);

/**
 * Root of the mean of squared log-ratios log(est/actual); a scale-
 * free residual summary analogous to the paper's sigma_epsilon.
 *
 * @param est    Estimates; all > 0.
 * @param actual Actuals; all > 0 and same length.
 * @return sqrt(mean(log(est_i / actual_i)^2)).
 */
double rmsLogError(const std::vector<double> &est,
                   const std::vector<double> &actual);

} // namespace ucx

#endif // UCX_STATS_DESCRIPTIVE_HH
