/**
 * @file
 * Lognormal distribution, the error/productivity law at the heart of
 * µComplexity (paper Section 3.1, Figure 2).
 *
 * The paper fixes mu = 0 for both the productivity rho and the error
 * epsilon, making the median of both distributions exactly 1.
 */

#ifndef UCX_STATS_LOGNORMAL_HH
#define UCX_STATS_LOGNORMAL_HH

#include <utility>

namespace ucx
{

/** Lognormal distribution: X = exp(N(mu, sigma^2)). */
class Lognormal
{
  public:
    /**
     * Create a lognormal distribution.
     *
     * @param mu    Mean of the log.
     * @param sigma Standard deviation of the log; must be > 0.
     */
    Lognormal(double mu, double sigma);

    /** @return mu, the mean of log(X). */
    double mu() const { return mu_; }

    /** @return sigma, the standard deviation of log(X). */
    double sigma() const { return sigma_; }

    /** @return The density at x (0 for x <= 0). */
    double pdf(double x) const;

    /** @return P(X <= x). */
    double cdf(double x) const;

    /**
     * Inverse cdf.
     *
     * @param p Probability in (0, 1).
     * @return x such that cdf(x) == p.
     */
    double quantile(double p) const;

    /** @return The mode exp(mu - sigma^2) (paper Figure 2). */
    double mode() const;

    /** @return The median exp(mu); equals 1 when mu == 0. */
    double median() const;

    /** @return The mean exp(mu + sigma^2 / 2) (paper Eq. 4 uses this). */
    double mean() const;

    /**
     * Central (equal-tail) confidence interval of the distribution.
     *
     * For mu = 0 this yields the multiplicative factors (yl, yh) of
     * paper Figures 3 and 4: the x% CI for an estimate eff is
     * (yl * eff, yh * eff).
     *
     * @param confidence Coverage in (0, 1), e.g. 0.90.
     * @return The pair (lower, upper) quantiles.
     */
    std::pair<double, double> centralInterval(double confidence) const;

  private:
    double mu_;
    double sigma_;
};

/**
 * Multiplicative CI factors for a lognormal error with log-sd
 * sigma_eps and median 1 — the (yl, yh) mapping of paper Figure 3.
 *
 * @param sigma_eps  Standard deviation of the log error; >= 0.
 * @param confidence Coverage in (0, 1).
 * @return The pair (yl, yh); (1, 1) when sigma_eps == 0.
 */
std::pair<double, double> errorFactors(double sigma_eps,
                                       double confidence);

} // namespace ucx

#endif // UCX_STATS_LOGNORMAL_HH
