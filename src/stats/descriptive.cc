#include "stats/descriptive.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hh"

namespace ucx
{

double
mean(const std::vector<double> &xs)
{
    require(!xs.empty(), "mean of empty sample");
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    require(xs.size() >= 2, "variance needs at least two samples");
    double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return ss / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
quantile(std::vector<double> xs, double p)
{
    require(!xs.empty(), "quantile of empty sample");
    require(p >= 0.0 && p <= 1.0, "quantile needs p in [0,1]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double h = p * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(std::floor(h));
    size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = h - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
median(std::vector<double> xs)
{
    return quantile(std::move(xs), 0.5);
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    require(xs.size() == ys.size(), "pearson needs equal sizes");
    require(xs.size() >= 2, "pearson needs at least two samples");
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    require(sxx > 0.0 && syy > 0.0, "pearson needs non-constant samples");
    return sxy / std::sqrt(sxx * syy);
}

namespace
{

std::vector<double>
ranks(const std::vector<double> &xs)
{
    std::vector<size_t> idx(xs.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return xs[a] < xs[b]; });
    std::vector<double> r(xs.size());
    size_t i = 0;
    while (i < idx.size()) {
        size_t j = i;
        while (j + 1 < idx.size() && xs[idx[j + 1]] == xs[idx[i]])
            ++j;
        // Average rank for the tie group [i, j].
        double avg = (static_cast<double>(i) + static_cast<double>(j)) /
                         2.0 +
                     1.0;
        for (size_t k = i; k <= j; ++k)
            r[idx[k]] = avg;
        i = j + 1;
    }
    return r;
}

} // namespace

double
spearman(const std::vector<double> &xs, const std::vector<double> &ys)
{
    return pearson(ranks(xs), ranks(ys));
}

double
rmsLogError(const std::vector<double> &est,
            const std::vector<double> &actual)
{
    require(est.size() == actual.size(), "rmsLogError size mismatch");
    require(!est.empty(), "rmsLogError of empty sample");
    double ss = 0.0;
    for (size_t i = 0; i < est.size(); ++i) {
        require(est[i] > 0.0 && actual[i] > 0.0,
                "rmsLogError needs positive values");
        double d = std::log(est[i] / actual[i]);
        ss += d * d;
    }
    return std::sqrt(ss / static_cast<double>(est.size()));
}

} // namespace ucx
