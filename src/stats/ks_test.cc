#include "stats/ks_test.hh"

#include <algorithm>
#include <cmath>

#include "util/error.hh"

namespace ucx
{

namespace
{

/** Asymptotic Kolmogorov distribution complement Q(lambda). */
double
kolmogorovQ(double lambda)
{
    if (lambda < 1e-8)
        return 1.0;
    double sum = 0.0;
    double sign = 1.0;
    for (int k = 1; k <= 100; ++k) {
        double term = sign * std::exp(-2.0 * k * k * lambda * lambda);
        sum += term;
        if (std::abs(term) < 1e-12)
            break;
        sign = -sign;
    }
    return std::clamp(2.0 * sum, 0.0, 1.0);
}

} // namespace

KsResult
ksTest(std::vector<double> sample,
       const std::function<double(double)> &cdf)
{
    require(!sample.empty(), "ksTest needs a non-empty sample");
    std::sort(sample.begin(), sample.end());
    double n = static_cast<double>(sample.size());
    double d = 0.0;
    for (size_t i = 0; i < sample.size(); ++i) {
        double f = cdf(sample[i]);
        double above = (static_cast<double>(i) + 1.0) / n - f;
        double below = f - static_cast<double>(i) / n;
        d = std::max({d, above, below});
    }
    KsResult res;
    res.statistic = d;
    double sqrt_n = std::sqrt(n);
    res.pValue = kolmogorovQ((sqrt_n + 0.12 + 0.11 / sqrt_n) * d);
    return res;
}

} // namespace ucx
