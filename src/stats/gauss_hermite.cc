#include "stats/gauss_hermite.hh"

#include <array>
#include <cmath>
#include <mutex>

#include "util/error.hh"

namespace ucx
{

namespace
{

/**
 * Evaluate the (physicists') Hermite polynomial H_n and its
 * derivative at x via the three-term recurrence, returning the
 * *orthonormalized* value pair used by the Newton iteration.
 */
void
hermiteEval(size_t n, double x, double &h, double &dh)
{
    // Orthonormal recurrence: ht_{k+1} = x*sqrt(2/(k+1)) ht_k
    //                                    - sqrt(k/(k+1)) ht_{k-1}
    double p0 = std::pow(M_PI, -0.25); // ht_0
    double p1 = std::sqrt(2.0) * x * p0;
    if (n == 0) {
        h = p0;
        dh = 0.0;
        return;
    }
    for (size_t k = 1; k < n; ++k) {
        double p2 = x * std::sqrt(2.0 / (k + 1.0)) * p1 -
                    std::sqrt(k / (k + 1.0)) * p0;
        p0 = p1;
        p1 = p2;
    }
    h = p1;
    dh = std::sqrt(2.0 * n) * p0;
}

} // namespace

GaussHermiteRule
gaussHermite(size_t n)
{
    require(n >= 1 && n <= 64, "gaussHermite supports 1..64 nodes");
    GaussHermiteRule rule;
    rule.nodes.assign(n, 0.0);
    rule.weights.assign(n, 0.0);

    // Initial guesses (Stroud & Secrest style), largest root first.
    size_t m = (n + 1) / 2;
    double z = 0.0;
    for (size_t i = 0; i < m; ++i) {
        if (i == 0) {
            z = std::sqrt(2.0 * n + 1.0) -
                1.85575 * std::pow(2.0 * n + 1.0, -1.0 / 6.0);
        } else if (i == 1) {
            z -= 1.14 * std::pow(static_cast<double>(n), 0.426) / z;
        } else if (i == 2) {
            z = 1.86 * z - 0.86 * rule.nodes[0];
        } else if (i == 3) {
            z = 1.91 * z - 0.91 * rule.nodes[1];
        } else {
            z = 2.0 * z - rule.nodes[i - 2];
        }

        double h = 0.0, dh = 1.0;
        for (int it = 0; it < 100; ++it) {
            hermiteEval(n, z, h, dh);
            double dz = h / dh;
            z -= dz;
            if (std::abs(dz) < 1e-14)
                break;
        }
        hermiteEval(n, z, h, dh);
        rule.nodes[i] = z;
        rule.weights[i] = 2.0 / (dh * dh);
        // Symmetric counterpart.
        rule.nodes[n - 1 - i] = -z;
        rule.weights[n - 1 - i] = rule.weights[i];
    }
    if (n % 2 == 1) {
        // Center the middle node exactly at zero.
        rule.nodes[m - 1] = 0.0;
        double h = 0.0, dh = 1.0;
        hermiteEval(n, 0.0, h, dh);
        rule.weights[m - 1] = 2.0 / (dh * dh);
    }
    return rule;
}

namespace
{

constexpr size_t kMaxOrder = 64;

/** One once-computed slot per rule order. */
struct RuleSlot
{
    std::once_flag once;
    GaussHermiteRule rule;
};

} // namespace

const GaussHermiteRule &
gaussHermiteCached(size_t n)
{
    require(n >= 1 && n <= kMaxOrder,
            "gaussHermite supports 1..64 nodes");
    static std::array<RuleSlot, kMaxOrder> table;
    RuleSlot &slot = table[n - 1];
    std::call_once(slot.once, [&slot, n] {
        slot.rule = gaussHermite(n);
    });
    return slot.rule;
}

} // namespace ucx
