/**
 * @file
 * Normal distribution: pdf, cdf, quantile (inverse cdf), and the
 * log-density used by the likelihood code.
 */

#ifndef UCX_STATS_NORMAL_HH
#define UCX_STATS_NORMAL_HH

namespace ucx
{

/** Normal (Gaussian) distribution N(mu, sigma^2). */
class Normal
{
  public:
    /**
     * Create a normal distribution.
     *
     * @param mu    Mean.
     * @param sigma Standard deviation; must be > 0.
     */
    Normal(double mu, double sigma);

    /** @return The mean mu. */
    double mu() const { return mu_; }

    /** @return The standard deviation sigma. */
    double sigma() const { return sigma_; }

    /** @return The density at x. */
    double pdf(double x) const;

    /** @return The log-density at x. */
    double logPdf(double x) const;

    /** @return P(X <= x). */
    double cdf(double x) const;

    /**
     * Inverse cdf.
     *
     * @param p Probability in (0, 1).
     * @return x such that cdf(x) == p.
     */
    double quantile(double p) const;

    /** @return The standard-normal cdf Phi(z). */
    static double stdCdf(double z);

    /** @return The standard-normal quantile Phi^-1(p), p in (0,1). */
    static double stdQuantile(double p);

  private:
    double mu_;
    double sigma_;
};

} // namespace ucx

#endif // UCX_STATS_NORMAL_HH
