#include "stats/lognormal.hh"

#include <cmath>

#include "stats/normal.hh"
#include "util/error.hh"

namespace ucx
{

Lognormal::Lognormal(double mu, double sigma)
    : mu_(mu), sigma_(sigma)
{
    require(sigma > 0.0, "Lognormal needs sigma > 0");
}

double
Lognormal::pdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    double z = (std::log(x) - mu_) / sigma_;
    return std::exp(-0.5 * z * z) /
           (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double
Lognormal::cdf(double x) const
{
    if (x <= 0.0)
        return 0.0;
    return Normal::stdCdf((std::log(x) - mu_) / sigma_);
}

double
Lognormal::quantile(double p) const
{
    return std::exp(mu_ + sigma_ * Normal::stdQuantile(p));
}

double
Lognormal::mode() const
{
    return std::exp(mu_ - sigma_ * sigma_);
}

double
Lognormal::median() const
{
    return std::exp(mu_);
}

double
Lognormal::mean() const
{
    return std::exp(mu_ + sigma_ * sigma_ / 2.0);
}

std::pair<double, double>
Lognormal::centralInterval(double confidence) const
{
    require(confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)");
    double tail = (1.0 - confidence) / 2.0;
    return {quantile(tail), quantile(1.0 - tail)};
}

std::pair<double, double>
errorFactors(double sigma_eps, double confidence)
{
    require(sigma_eps >= 0.0, "sigma_eps must be >= 0");
    if (sigma_eps == 0.0)
        return {1.0, 1.0};
    return Lognormal(0.0, sigma_eps).centralInterval(confidence);
}

} // namespace ucx
