#include "synth/elaborate.hh"

#include <algorithm>

#include "hdl/const_eval.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace ucx
{

bool
GenerateStats::degenerateAgainst(const GenerateStats &reference) const
{
    // A loop that iterates in the reference must still iterate here;
    // a loop whose every instance now runs zero times has been
    // optimized away. (Reference loops that never iterate — e.g. the
    // zeroth slot of a triangular dependency network — impose no
    // constraint.)
    for (const auto &[key, ref_trips] : reference.loopTrips) {
        int64_t ref_max = *std::max_element(ref_trips.begin(),
                                            ref_trips.end());
        if (ref_max <= 0)
            continue;
        auto it = loopTrips.find(key);
        if (it == loopTrips.end())
            return true; // loop removed entirely
        int64_t here_max =
            *std::max_element(it->second.begin(), it->second.end());
        if (here_max <= 0)
            return true;
    }
    // A generate-if that no longer takes a branch the reference
    // takes has had that conditional optimized away.
    for (const auto &[key, branches] : reference.ifBranches) {
        auto it = ifBranches.find(key);
        if (it == ifBranches.end())
            return true;
        for (int b : branches)
            if (it->second.find(b) == it->second.end())
                return true;
    }
    return false;
}

size_t
InstanceInfo::totalInstances() const
{
    size_t n = 1;
    for (const auto &c : children)
        n += c.totalInstances();
    return n;
}

void
InstanceInfo::countModules(std::map<std::string, size_t> &counts) const
{
    ++counts[moduleName];
    for (const auto &c : children)
        c.countModules(counts);
}

namespace
{

/** One generate-expanded module item with its constant bindings. */
struct FlatItem
{
    ItemPtr item;
    ConstEnv consts;
};

/** A bit-field assignment to part of a wire. */
struct FieldAssign
{
    int offset;
    int width;
    NodeId node;
    int line;
};

/** Port of an elaborated child instance. */
struct PortInfo
{
    SigId sig;
    PortDir dir;
    int width;
};

/** Symbolic state of one always block during lowering. */
struct SymState
{
    std::map<SigId, NodeId> env;   ///< Blocking view.
    std::map<SigId, NodeId> nbEnv; ///< Pending non-blocking updates.
};

/** Identifier renaming applied when unrolling generate loops. */
using RenameMap = std::map<std::string, std::string>;

void
renameExpr(Expr &e, const RenameMap &map)
{
    if ((e.kind == ExprKind::Ident || e.kind == ExprKind::Range) &&
        !e.name.empty()) {
        auto it = map.find(e.name);
        if (it != map.end())
            e.name = it->second;
    }
    if (e.a)
        renameExpr(*e.a, map);
    if (e.b)
        renameExpr(*e.b, map);
    if (e.c)
        renameExpr(*e.c, map);
    for (auto &p : e.parts)
        renameExpr(*p, map);
}

void
renameStmt(Stmt &s, const RenameMap &map)
{
    for (auto &child : s.stmts)
        renameStmt(*child, map);
    if (s.cond)
        renameExpr(*s.cond, map);
    if (s.thenStmt)
        renameStmt(*s.thenStmt, map);
    if (s.elseStmt)
        renameStmt(*s.elseStmt, map);
    if (s.subject)
        renameExpr(*s.subject, map);
    for (auto &item : s.items) {
        for (auto &l : item.labels)
            renameExpr(*l, map);
        if (item.body)
            renameStmt(*item.body, map);
    }
    if (s.lhs)
        renameExpr(*s.lhs, map);
    if (s.rhs)
        renameExpr(*s.rhs, map);
    if (s.loopInit)
        renameExpr(*s.loopInit, map);
    if (s.loopStep)
        renameExpr(*s.loopStep, map);
}

void
renameItem(Item &i, const RenameMap &map)
{
    for (auto &n : i.names) {
        auto it = map.find(n);
        if (it != map.end())
            n = it->second;
    }
    if (i.msb)
        renameExpr(*i.msb, map);
    if (i.lsb)
        renameExpr(*i.lsb, map);
    if (i.arrayLeft)
        renameExpr(*i.arrayLeft, map);
    if (i.arrayRight)
        renameExpr(*i.arrayRight, map);
    if (i.param.value)
        renameExpr(*i.param.value, map);
    if (i.lhs)
        renameExpr(*i.lhs, map);
    if (i.rhs)
        renameExpr(*i.rhs, map);
    if (i.body)
        renameStmt(*i.body, map);
    {
        auto it = map.find(i.instName);
        if (it != map.end())
            i.instName = it->second;
    }
    for (auto &c : i.paramOverrides)
        if (c.expr)
            renameExpr(*c.expr, map);
    for (auto &c : i.connections)
        if (c.expr)
            renameExpr(*c.expr, map);
    for (auto &child : i.genBody)
        renameItem(*child, map);
    if (i.genIfCond)
        renameExpr(*i.genIfCond, map);
    for (auto &child : i.genThen)
        renameItem(*child, map);
    for (auto &child : i.genElse)
        renameItem(*child, map);
}

/** Collect names a flattened item list declares (nets, instances). */
void
collectDeclaredNames(const std::vector<FlatItem> &items,
                     std::vector<std::string> &names)
{
    for (const auto &fi : items) {
        if (fi.item->kind == ItemKind::Net) {
            for (const auto &n : fi.item->names)
                names.push_back(n);
        } else if (fi.item->kind == ItemKind::Instance) {
            names.push_back(fi.item->instName);
        }
    }
}

/** The elaboration engine. */
class Elaborator
{
  public:
    Elaborator(const Design &design, const ElabOptions &opts)
        : design_(design), opts_(opts)
    {}

    ElabResult
    run(const std::string &top)
    {
        ElabResult result;
        std::map<std::string, int64_t> overrides = opts_.topParams;
        result.top = elabInstance(top, "", overrides, 0, nullptr);
        finalizeDrivers();
        result.rtl = std::move(rtl_);
        result.stats = std::move(stats_);
        result.warnings = std::move(warnings_);
        result.rtl.check();
        return result;
    }

  private:
    struct Scope
    {
        std::string prefix;
        std::map<std::string, SigId> sigs;
        std::map<std::string, MemId> mems;
    };

    // ---------------------------------------------------------
    // Instance elaboration
    // ---------------------------------------------------------

    InstanceInfo
    elabInstance(const std::string &module_name,
                 const std::string &prefix,
                 const std::map<std::string, int64_t> &param_overrides,
                 size_t depth, std::map<std::string, PortInfo> *ports_out)
    {
        require(depth <= opts_.maxDepth,
                "hierarchy deeper than " +
                    std::to_string(opts_.maxDepth) +
                    " (recursive instantiation?)");
        const Module &mod = design_.module(module_name);

        InstanceInfo info;
        info.moduleName = module_name;
        info.path = prefix.empty() ? std::string("")
                                   : prefix.substr(0, prefix.size() - 1);

        Scope scope;
        scope.prefix = prefix;
        ConstEnv consts;

        // Bind parameters in declaration order.
        for (const auto &p : mod.params) {
            int64_t v;
            auto it = param_overrides.find(p.name);
            if (it != param_overrides.end())
                v = it->second;
            else
                v = evalConst(*p.value, consts);
            consts[p.name] = v;
            info.params[p.name] = v;
        }
        for (const auto &[name, value] : param_overrides) {
            bool known = false;
            for (const auto &p : mod.params)
                known = known || p.name == name;
            require(known, "module '" + module_name +
                               "' has no parameter '" + name + "'");
            (void)value;
        }

        // Declare ports.
        std::map<std::string, PortInfo> ports;
        for (const auto &port : mod.ports) {
            require(port.dir != PortDir::Inout,
                    "inout ports are not supported (module '" +
                        module_name + "')");
            int width = 1;
            if (port.msb) {
                int64_t msb = evalConst(*port.msb, consts);
                int64_t lsb = evalConst(*port.lsb, consts);
                require(msb >= lsb && lsb == 0,
                        "port '" + port.name +
                            "' range must be [msb:0] with msb >= 0");
                width = static_cast<int>(msb - lsb + 1);
            }
            SigKind kind = SigKind::Wire;
            if (depth == 0 && port.dir == PortDir::Input)
                kind = SigKind::Input;
            else if (port.isReg)
                kind = SigKind::Reg;
            SigId sig = rtl_.addSignal(prefix + port.name, width, kind);
            scope.sigs[port.name] = sig;
            ports[port.name] = {sig, port.dir, width};
            if (depth == 0) {
                if (port.dir == PortDir::Input)
                    rtl_.inputs.push_back(sig);
                else
                    rtl_.outputs.push_back(sig);
            }
        }
        if (ports_out)
            *ports_out = ports;

        // Generate expansion.
        std::vector<FlatItem> flat;
        expandItems(mod.items, consts, module_name, flat);

        // Pass A: declarations.
        for (const auto &fi : flat) {
            if (fi.item->kind == ItemKind::Net)
                declareNet(*fi.item, fi.consts, scope);
        }

        // Pass B: behavior and children.
        for (const auto &fi : flat) {
            switch (fi.item->kind) {
              case ItemKind::ContAssign:
                processContAssign(*fi.item, fi.consts, scope);
                break;
              case ItemKind::Always:
                processAlways(*fi.item, fi.consts, scope);
                break;
              case ItemKind::Instance:
                info.children.push_back(
                    processInstance(*fi.item, fi.consts, scope, depth));
                break;
              default:
                break;
            }
        }
        return info;
    }

    void
    declareNet(const Item &item, const ConstEnv &consts, Scope &scope)
    {
        int width = 1;
        if (item.msb) {
            int64_t msb = evalConst(*item.msb, consts);
            int64_t lsb = evalConst(*item.lsb, consts);
            require(msb >= lsb && lsb == 0,
                    "net range must be [msb:0] with msb >= 0 (line " +
                        std::to_string(item.line) + ")");
            width = static_cast<int>(msb - lsb + 1);
        }
        if (item.arrayLeft) {
            require(item.isReg, "memories must be declared 'reg'");
            require(item.names.size() == 1,
                    "one memory per declaration");
            int64_t l = evalConst(*item.arrayLeft, consts);
            int64_t r = evalConst(*item.arrayRight, consts);
            int64_t depth = std::max(l, r) - std::min(l, r) + 1;
            require(depth >= 1 && depth <= (1 << 24),
                    "unreasonable memory depth");
            RtlMemory memory;
            memory.name = scope.prefix + item.names[0];
            memory.width = width;
            memory.depth = static_cast<int>(depth);
            MemId id = static_cast<MemId>(rtl_.memories.size());
            rtl_.memories.push_back(std::move(memory));
            scope.mems[item.names[0]] = id;
            return;
        }
        for (const auto &name : item.names) {
            SigKind kind = item.isReg ? SigKind::Reg : SigKind::Wire;
            SigId sig =
                rtl_.addSignal(scope.prefix + name, width, kind);
            scope.sigs[name] = sig;
        }
    }

    // ---------------------------------------------------------
    // Generate expansion
    // ---------------------------------------------------------

    void
    expandItems(const std::vector<ItemPtr> &items, ConstEnv consts,
                const std::string &module_name,
                std::vector<FlatItem> &out)
    {
        for (const auto &item : items)
            expandItem(*item, consts, module_name, out);
    }

    void
    expandItem(const Item &item, ConstEnv &consts,
               const std::string &module_name, std::vector<FlatItem> &out)
    {
        switch (item.kind) {
          case ItemKind::Localparam:
            consts[item.param.name] =
                evalConst(*item.param.value, consts);
            return;
          case ItemKind::Genvar:
            return; // Bound when loops run.
          case ItemKind::GenFor: {
            std::string key =
                module_name + ":" + std::to_string(item.line);
            int64_t v = evalConst(*item.genInit, consts);
            int64_t trips = 0;
            while (true) {
                ConstEnv iter = consts;
                iter[item.genvar] = v;
                if (evalConst(*item.genCond, iter) == 0)
                    break;
                require(static_cast<size_t>(trips) <
                            opts_.maxLoopIterations,
                        "generate loop exceeds iteration cap at " +
                            key);
                // Expand this iteration into a scratch list, then
                // rename everything it declares so iterations do not
                // collide.
                std::vector<FlatItem> scratch;
                for (const auto &child : item.genBody) {
                    ConstEnv child_env = iter;
                    expandItem(*child, child_env, module_name,
                               scratch);
                    iter = std::move(child_env);
                }
                std::vector<std::string> declared;
                collectDeclaredNames(scratch, declared);
                RenameMap rename;
                for (const auto &n : declared) {
                    rename[n] = n + "__l" +
                                std::to_string(item.line) + "_" +
                                std::to_string(v);
                }
                for (auto &fi : scratch) {
                    if (!rename.empty())
                        renameItem(*fi.item, rename);
                    out.push_back(std::move(fi));
                }
                v = [&] {
                    ConstEnv step = consts;
                    step[item.genvar] = v;
                    return evalConst(*item.genStep, step);
                }();
                ++trips;
            }
            stats_.loopTrips[key].insert(trips);
            return;
          }
          case ItemKind::GenIf: {
            std::string key =
                module_name + ":" + std::to_string(item.line);
            bool taken = evalConst(*item.genIfCond, consts) != 0;
            stats_.ifBranches[key].insert(taken ? 1 : 0);
            const auto &branch = taken ? item.genThen : item.genElse;
            for (const auto &child : branch)
                expandItem(*child, consts, module_name, out);
            return;
          }
          default: {
            FlatItem fi;
            fi.item = item.clone();
            fi.consts = consts;
            out.push_back(std::move(fi));
            return;
          }
        }
    }

    // ---------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------

    NodeId
    toBool(NodeId node)
    {
        if (rtl_.nodes[node].width == 1)
            return node;
        RtlNode n;
        n.op = RtlOp::RedOr;
        n.width = 1;
        n.args = {node};
        return rtl_.addNode(std::move(n));
    }

    NodeId
    unaryNode(RtlOp op, NodeId a, int width)
    {
        RtlNode n;
        n.op = op;
        n.width = width;
        n.args = {a};
        return rtl_.addNode(std::move(n));
    }

    NodeId
    binaryNode(RtlOp op, NodeId a, NodeId b, int width)
    {
        RtlNode n;
        n.op = op;
        n.width = width;
        n.args = {a, b};
        return rtl_.addNode(std::move(n));
    }

    NodeId
    muxNode(NodeId sel, NodeId a, NodeId b)
    {
        int w = std::max(rtl_.nodes[a].width, rtl_.nodes[b].width);
        RtlNode n;
        n.op = RtlOp::Mux;
        n.width = w;
        n.args = {toBool(sel), rtl_.resize(a, w), rtl_.resize(b, w)};
        return rtl_.addNode(std::move(n));
    }

    NodeId
    sliceNode(NodeId a, int lo, int width)
    {
        // User-facing: part selects exceeding a signal's declared
        // width arrive here (e.g. a candidate parameterization that
        // shrinks a bus below a hard-coded field position).
        require(lo >= 0 && width >= 1 &&
                    lo + width <= rtl_.nodes[a].width,
                "bit/part select out of range for a " +
                    std::to_string(rtl_.nodes[a].width) +
                    "-bit value (select [" +
                    std::to_string(lo + width - 1) + ":" +
                    std::to_string(lo) + "])");
        RtlNode n;
        n.op = RtlOp::Slice;
        n.width = width;
        n.lo = lo;
        n.args = {a};
        return rtl_.addNode(std::move(n));
    }

    /** Current value of a signal as seen by procedural reads. */
    NodeId
    readSignal(SigId sig, const SymState *state)
    {
        if (state) {
            auto it = state->env.find(sig);
            if (it != state->env.end())
                return it->second;
        }
        return rtl_.sigNode(sig);
    }

    NodeId
    exprToNode(const Expr &e, const ConstEnv &consts, Scope &scope,
               const SymState *state)
    {
        switch (e.kind) {
          case ExprKind::Number: {
            int w = e.literalWidth > 0 ? e.literalWidth : 32;
            return rtl_.constNode(e.value, w);
          }
          case ExprKind::Ident: {
            auto cit = consts.find(e.name);
            if (cit != consts.end()) {
                return rtl_.constNode(
                    static_cast<uint64_t>(cit->second), 32);
            }
            auto sit = scope.sigs.find(e.name);
            require(sit != scope.sigs.end(),
                    "unknown identifier '" + e.name + "' (line " +
                        std::to_string(e.line) + ")");
            return readSignal(sit->second, state);
          }
          case ExprKind::Index: {
            require(e.a && e.a->kind == ExprKind::Ident,
                    "only simple names can be indexed (line " +
                        std::to_string(e.line) + ")");
            const std::string &base = e.a->name;
            auto mit = scope.mems.find(base);
            if (mit != scope.mems.end()) {
                NodeId addr = exprToNode(*e.b, consts, scope, state);
                RtlNode n;
                n.op = RtlOp::MemRead;
                n.width = rtl_.memories[mit->second].width;
                n.mem = mit->second;
                n.args = {addr};
                return rtl_.addNode(std::move(n));
            }
            NodeId value = exprToNode(*e.a, consts, scope, state);
            if (isConst(*e.b, consts)) {
                int64_t idx = evalConst(*e.b, consts);
                require(idx >= 0 &&
                            idx < rtl_.nodes[value].width,
                        "bit index out of range (line " +
                            std::to_string(e.line) + ")");
                return sliceNode(value, static_cast<int>(idx), 1);
            }
            NodeId idx = exprToNode(*e.b, consts, scope, state);
            NodeId shifted = binaryNode(RtlOp::Shr, value, idx,
                                        rtl_.nodes[value].width);
            return sliceNode(shifted, 0, 1);
          }
          case ExprKind::Range: {
            auto sit = scope.sigs.find(e.name);
            require(sit != scope.sigs.end(),
                    "unknown identifier '" + e.name + "' (line " +
                        std::to_string(e.line) + ")");
            NodeId value = readSignal(sit->second, state);
            int64_t msb = evalConst(*e.a, consts);
            int64_t lsb = evalConst(*e.b, consts);
            require(msb >= lsb && lsb >= 0,
                    "bad part select (line " +
                        std::to_string(e.line) + ")");
            return sliceNode(value, static_cast<int>(lsb),
                             static_cast<int>(msb - lsb + 1));
          }
          case ExprKind::Unary: {
            NodeId a = exprToNode(*e.a, consts, scope, state);
            int w = rtl_.nodes[a].width;
            switch (e.unOp) {
              case UnOp::Plus:
                return a;
              case UnOp::Minus:
                return binaryNode(RtlOp::Sub,
                                  rtl_.constNode(0, w), a, w);
              case UnOp::Not:
                return unaryNode(RtlOp::LogNot, a, 1);
              case UnOp::BitNot:
                return unaryNode(RtlOp::Not, a, w);
              case UnOp::RedAnd:
                return unaryNode(RtlOp::RedAnd, a, 1);
              case UnOp::RedOr:
                return unaryNode(RtlOp::RedOr, a, 1);
              case UnOp::RedXor:
                return unaryNode(RtlOp::RedXor, a, 1);
            }
            break;
          }
          case ExprKind::Binary: {
            NodeId a = exprToNode(*e.a, consts, scope, state);
            NodeId b = exprToNode(*e.b, consts, scope, state);
            int wa = rtl_.nodes[a].width;
            int wb = rtl_.nodes[b].width;
            int w = std::max(wa, wb);
            auto both = [&](int width) {
                a = rtl_.resize(a, width);
                b = rtl_.resize(b, width);
            };
            switch (e.binOp) {
              case BinOp::Add:
                both(w);
                return binaryNode(RtlOp::Add, a, b, w);
              case BinOp::Sub:
                both(w);
                return binaryNode(RtlOp::Sub, a, b, w);
              case BinOp::Mul: {
                int wm = std::min(wa + wb, 64);
                both(wm);
                return binaryNode(RtlOp::Mul, a, b, wm);
              }
              case BinOp::Div:
              case BinOp::Mod: {
                require(isConst(*e.b, consts),
                        "division only by constants (line " +
                            std::to_string(e.line) + ")");
                int64_t d = evalConst(*e.b, consts);
                require(d > 0 && (d & (d - 1)) == 0,
                        "division only by powers of two (line " +
                            std::to_string(e.line) + ")");
                int sh = 0;
                while ((1ll << sh) != d)
                    ++sh;
                if (e.binOp == BinOp::Div) {
                    NodeId amt = rtl_.constNode(
                        static_cast<uint64_t>(sh), 32);
                    return binaryNode(RtlOp::Shr, a, amt, wa);
                }
                if (sh == 0)
                    return rtl_.constNode(0, 1);
                return sliceNode(a, 0, sh);
              }
              case BinOp::And:
                both(w);
                return binaryNode(RtlOp::And, a, b, w);
              case BinOp::Or:
                both(w);
                return binaryNode(RtlOp::Or, a, b, w);
              case BinOp::Xor:
                both(w);
                return binaryNode(RtlOp::Xor, a, b, w);
              case BinOp::LogAnd:
                return binaryNode(RtlOp::And, toBool(a), toBool(b),
                                  1);
              case BinOp::LogOr:
                return binaryNode(RtlOp::Or, toBool(a), toBool(b), 1);
              case BinOp::Eq:
                both(w);
                return binaryNode(RtlOp::Eq, a, b, 1);
              case BinOp::Ne:
                both(w);
                return unaryNode(RtlOp::Not,
                                 binaryNode(RtlOp::Eq, a, b, 1), 1);
              case BinOp::Lt:
                both(w);
                return binaryNode(RtlOp::Lt, a, b, 1);
              case BinOp::Gt:
                both(w);
                return binaryNode(RtlOp::Lt, b, a, 1);
              case BinOp::Le:
                both(w);
                return unaryNode(RtlOp::Not,
                                 binaryNode(RtlOp::Lt, b, a, 1), 1);
              case BinOp::Ge:
                both(w);
                return unaryNode(RtlOp::Not,
                                 binaryNode(RtlOp::Lt, a, b, 1), 1);
              case BinOp::Shl:
                return binaryNode(RtlOp::Shl, a, b, wa);
              case BinOp::Shr:
                return binaryNode(RtlOp::Shr, a, b, wa);
            }
            break;
          }
          case ExprKind::Ternary: {
            NodeId cond = exprToNode(*e.a, consts, scope, state);
            NodeId t = exprToNode(*e.b, consts, scope, state);
            NodeId f = exprToNode(*e.c, consts, scope, state);
            return muxNode(cond, t, f);
          }
          case ExprKind::Concat: {
            RtlNode n;
            n.op = RtlOp::Concat;
            int w = 0;
            for (const auto &part : e.parts) {
                NodeId p = exprToNode(*part, consts, scope, state);
                w += rtl_.nodes[p].width;
                n.args.push_back(p);
            }
            n.width = w;
            return rtl_.addNode(std::move(n));
          }
          case ExprKind::Repl: {
            int64_t count = evalConst(*e.a, consts);
            require(count >= 1 && count <= 4096,
                    "bad replication count (line " +
                        std::to_string(e.line) + ")");
            NodeId body = exprToNode(*e.b, consts, scope, state);
            RtlNode n;
            n.op = RtlOp::Concat;
            n.width = static_cast<int>(count) *
                      rtl_.nodes[body].width;
            for (int64_t i = 0; i < count; ++i)
                n.args.push_back(body);
            return rtl_.addNode(std::move(n));
          }
        }
        panic("unreachable expression kind in exprToNode");
    }

    // ---------------------------------------------------------
    // Continuous assignments and field assembly
    // ---------------------------------------------------------

    void
    addField(SigId sig, int offset, int width, NodeId node, int line)
    {
        const RtlSignal &s = rtl_.signals[sig];
        require(s.kind == SigKind::Wire,
                "continuous assignment target '" + s.name +
                    "' must be a wire (line " + std::to_string(line) +
                    ")");
        require(offset >= 0 && offset + width <= s.width,
                "assignment out of range for '" + s.name + "'");
        fields_[sig].push_back(
            {offset, width, rtl_.resize(node, width), line});
    }

    /** Drive an lvalue expression from a node (continuous context). */
    void
    driveLvalue(const Expr &lhs, NodeId node, const ConstEnv &consts,
                Scope &scope)
    {
        switch (lhs.kind) {
          case ExprKind::Ident: {
            auto sit = scope.sigs.find(lhs.name);
            require(sit != scope.sigs.end(),
                    "unknown assignment target '" + lhs.name + "'");
            int w = rtl_.signals[sit->second].width;
            addField(sit->second, 0, w, node, lhs.line);
            return;
          }
          case ExprKind::Index: {
            require(lhs.a && lhs.a->kind == ExprKind::Ident,
                    "bad assignment target");
            auto sit = scope.sigs.find(lhs.a->name);
            require(sit != scope.sigs.end(),
                    "unknown assignment target '" + lhs.a->name +
                        "'");
            int64_t idx = evalConst(*lhs.b, consts);
            addField(sit->second, static_cast<int>(idx), 1, node,
                     lhs.line);
            return;
          }
          case ExprKind::Range: {
            auto sit = scope.sigs.find(lhs.name);
            require(sit != scope.sigs.end(),
                    "unknown assignment target '" + lhs.name + "'");
            int64_t msb = evalConst(*lhs.a, consts);
            int64_t lsb = evalConst(*lhs.b, consts);
            require(msb >= lsb && lsb >= 0, "bad part select target");
            addField(sit->second, static_cast<int>(lsb),
                     static_cast<int>(msb - lsb + 1), node, lhs.line);
            return;
          }
          case ExprKind::Concat: {
            // Leftmost part takes the most-significant bits.
            int total = 0;
            std::vector<int> widths;
            for (const auto &part : lhs.parts) {
                int w = lvalueWidth(*part, consts, scope);
                widths.push_back(w);
                total += w;
            }
            NodeId value = rtl_.resize(node, total);
            int hi = total;
            for (size_t i = 0; i < lhs.parts.size(); ++i) {
                int w = widths[i];
                NodeId piece = sliceNode(value, hi - w, w);
                driveLvalue(*lhs.parts[i], piece, consts, scope);
                hi -= w;
            }
            return;
          }
          default:
            fatal("expression is not a valid assignment target "
                  "(line " +
                  std::to_string(lhs.line) + ")");
        }
    }

    int
    lvalueWidth(const Expr &lhs, const ConstEnv &consts, Scope &scope)
    {
        switch (lhs.kind) {
          case ExprKind::Ident: {
            auto sit = scope.sigs.find(lhs.name);
            require(sit != scope.sigs.end(),
                    "unknown assignment target '" + lhs.name + "'");
            return rtl_.signals[sit->second].width;
          }
          case ExprKind::Index:
            return 1;
          case ExprKind::Range: {
            int64_t msb = evalConst(*lhs.a, consts);
            int64_t lsb = evalConst(*lhs.b, consts);
            require(msb >= lsb, "bad part select target");
            return static_cast<int>(msb - lsb + 1);
          }
          case ExprKind::Concat: {
            int total = 0;
            for (const auto &part : lhs.parts)
                total += lvalueWidth(*part, consts, scope);
            return total;
          }
          default:
            fatal("expression is not a valid assignment target");
        }
    }

    void
    processContAssign(const Item &item, const ConstEnv &consts,
                      Scope &scope)
    {
        NodeId rhs = exprToNode(*item.rhs, consts, scope, nullptr);
        driveLvalue(*item.lhs, rhs, consts, scope);
    }

    // ---------------------------------------------------------
    // Always blocks
    // ---------------------------------------------------------

    /** Assignment targets collected from a block (for conflict
     * detection and final driver emission). */
    void
    processAlways(const Item &item, const ConstEnv &consts,
                  Scope &scope)
    {
        SymState state;
        ConstEnv env = consts;
        NodeId path = invalidNode; // "always true"
        exec(*item.body, state, env, scope, path, item.sequential);

        if (item.sequential) {
            // Non-blocking updates become register next-state
            // expressions; blocking updates inside sequential blocks
            // are treated the same way (common lint-clean subset).
            std::map<SigId, NodeId> merged = state.env;
            for (const auto &[sig, node] : state.nbEnv)
                merged[sig] = node;
            for (const auto &[sig, node] : merged) {
                RtlSignal &s = rtl_.signals[sig];
                require(s.kind == SigKind::Reg,
                        "sequential assignment to non-reg '" +
                            s.name + "'");
                require(s.driver == invalidNode,
                        "register '" + s.name +
                            "' driven by multiple always blocks");
                s.driver = rtl_.resize(node, s.width);
            }
        } else {
            require(state.nbEnv.empty(),
                    "non-blocking assignment in combinational "
                    "always block");
            for (const auto &[sig, node] : state.env) {
                RtlSignal &s = rtl_.signals[sig];
                require(s.kind == SigKind::Reg ||
                            s.kind == SigKind::Wire,
                        "bad combinational assignment target");
                // A reg assigned combinationally is really a wire.
                if (s.kind == SigKind::Reg)
                    s.kind = SigKind::Wire;
                fields_[sig].push_back(
                    {0, s.width, rtl_.resize(node, s.width),
                     item.line});
            }
        }
    }

    NodeId
    andCond(NodeId a, NodeId b)
    {
        if (a == invalidNode)
            return b;
        if (b == invalidNode)
            return a;
        return binaryNode(RtlOp::And, a, b, 1);
    }

    NodeId
    notCond(NodeId a)
    {
        return unaryNode(RtlOp::Not, toBool(a), 1);
    }

    /** Read a signal's pending value for non-blocking RMW. */
    NodeId
    nbRead(SigId sig, const SymState &state)
    {
        auto it = state.nbEnv.find(sig);
        if (it != state.nbEnv.end())
            return it->second;
        auto eit = state.env.find(sig);
        if (eit != state.env.end())
            return eit->second;
        return rtl_.sigNode(sig);
    }

    void
    exec(const Stmt &stmt, SymState &state, ConstEnv &consts,
         Scope &scope, NodeId path, bool sequential)
    {
        switch (stmt.kind) {
          case StmtKind::Block:
            for (const auto &child : stmt.stmts)
                exec(*child, state, consts, scope, path, sequential);
            return;
          case StmtKind::Assign:
            execAssign(stmt, state, consts, scope, path, sequential);
            return;
          case StmtKind::If: {
            if (isConst(*stmt.cond, consts)) {
                // Constant condition: only one branch exists after
                // constant propagation.
                if (evalConst(*stmt.cond, consts) != 0)
                    exec(*stmt.thenStmt, state, consts, scope, path,
                         sequential);
                else if (stmt.elseStmt)
                    exec(*stmt.elseStmt, state, consts, scope, path,
                         sequential);
                return;
            }
            NodeId cond = toBool(
                exprToNode(*stmt.cond, consts, scope, &state));
            SymState then_state = state;
            exec(*stmt.thenStmt, then_state, consts, scope,
                 andCond(path, cond), sequential);
            SymState else_state = state;
            if (stmt.elseStmt) {
                exec(*stmt.elseStmt, else_state, consts, scope,
                     andCond(path, notCond(cond)), sequential);
            }
            mergeStates(state, cond, then_state, else_state);
            return;
          }
          case StmtKind::Case: {
            std::vector<const CaseItem *> labeled;
            const CaseItem *default_arm = nullptr;
            for (const auto &item : stmt.items) {
                if (item.labels.empty()) {
                    require(default_arm == nullptr,
                            "multiple default arms in case");
                    default_arm = &item;
                } else {
                    labeled.push_back(&item);
                }
            }
            execCase(stmt, labeled, default_arm, 0, state, consts,
                     scope, path, sequential);
            return;
          }
          case StmtKind::For: {
            int64_t v = evalConst(*stmt.loopInit, consts);
            size_t trips = 0;
            std::string key =
                "proc:" + std::to_string(stmt.line);
            while (true) {
                ConstEnv iter = consts;
                iter[stmt.loopVar] = v;
                if (evalConst(*stmt.cond, iter) == 0)
                    break;
                require(trips < opts_.maxLoopIterations,
                        "procedural loop exceeds iteration cap");
                exec(*stmt.thenStmt, state, iter, scope, path,
                     sequential);
                iter[stmt.loopVar] = v;
                v = evalConst(*stmt.loopStep, iter);
                ++trips;
            }
            stats_.loopTrips[key].insert(
                static_cast<int64_t>(trips));
            return;
          }
        }
    }

    void
    execCase(const Stmt &stmt,
             const std::vector<const CaseItem *> &labeled,
             const CaseItem *default_arm, size_t index,
             SymState &state, ConstEnv &consts, Scope &scope,
             NodeId path, bool sequential)
    {
        if (index >= labeled.size()) {
            // No label matched: the default arm (if any) fires.
            if (default_arm) {
                exec(*default_arm->body, state, consts, scope, path,
                     sequential);
            }
            return;
        }
        const CaseItem &item = *labeled[index];

        NodeId subject =
            exprToNode(*stmt.subject, consts, scope, &state);
        NodeId match = invalidNode;
        for (const auto &label : item.labels) {
            NodeId l = exprToNode(*label, consts, scope, &state);
            int w = std::max(rtl_.nodes[subject].width,
                             rtl_.nodes[l].width);
            NodeId eq = binaryNode(RtlOp::Eq,
                                   rtl_.resize(subject, w),
                                   rtl_.resize(l, w), 1);
            match = match == invalidNode
                        ? eq
                        : binaryNode(RtlOp::Or, match, eq, 1);
        }

        SymState then_state = state;
        exec(*item.body, then_state, consts, scope,
             andCond(path, match), sequential);
        SymState else_state = state;
        execCase(stmt, labeled, default_arm, index + 1, else_state,
                 consts, scope, andCond(path, notCond(match)),
                 sequential);
        mergeStates(state, match, then_state, else_state);
    }

    void
    mergeStates(SymState &state, NodeId cond, const SymState &t,
                const SymState &e)
    {
        auto merge_map = [&](std::map<SigId, NodeId> SymState::*which) {
            std::map<SigId, NodeId> &base = state.*which;
            const std::map<SigId, NodeId> &mt = t.*which;
            const std::map<SigId, NodeId> &me = e.*which;
            std::vector<SigId> keys;
            for (const auto &[k, v] : mt) {
                (void)v;
                keys.push_back(k);
            }
            for (const auto &[k, v] : me) {
                (void)v;
                if (mt.find(k) == mt.end())
                    keys.push_back(k);
            }
            for (SigId k : keys) {
                auto get = [&](const std::map<SigId, NodeId> &m)
                    -> NodeId {
                    auto it = m.find(k);
                    if (it != m.end())
                        return it->second;
                    auto bit = base.find(k);
                    if (bit != base.end())
                        return bit->second;
                    return rtl_.sigNode(k);
                };
                NodeId tv = get(mt);
                NodeId ev = get(me);
                if (tv == ev) {
                    base[k] = tv;
                    continue;
                }
                base[k] = muxNode(cond, tv, ev);
            }
        };
        merge_map(&SymState::env);
        merge_map(&SymState::nbEnv);
    }

    void
    execAssign(const Stmt &stmt, SymState &state, ConstEnv &consts,
               Scope &scope, NodeId path, bool sequential)
    {
        NodeId rhs = exprToNode(*stmt.rhs, consts, scope, &state);
        assignLvalue(*stmt.lhs, rhs, state, consts, scope, path,
                     stmt.nonBlocking, sequential);
    }

    void
    assignLvalue(const Expr &lhs, NodeId value, SymState &state,
                 ConstEnv &consts, Scope &scope, NodeId path,
                 bool non_blocking, bool sequential)
    {
        auto write = [&](SigId sig, NodeId node) {
            const RtlSignal &s = rtl_.signals[sig];
            NodeId resized = rtl_.resize(node, s.width);
            if (non_blocking)
                state.nbEnv[sig] = resized;
            else
                state.env[sig] = resized;
        };
        auto current = [&](SigId sig) {
            if (non_blocking)
                return nbRead(sig, state);
            return readSignal(sig, &state);
        };

        switch (lhs.kind) {
          case ExprKind::Ident: {
            auto sit = scope.sigs.find(lhs.name);
            require(sit != scope.sigs.end(),
                    "unknown assignment target '" + lhs.name + "'");
            write(sit->second, value);
            return;
          }
          case ExprKind::Index: {
            require(lhs.a && lhs.a->kind == ExprKind::Ident,
                    "bad assignment target");
            const std::string &base = lhs.a->name;
            auto mit = scope.mems.find(base);
            if (mit != scope.mems.end()) {
                require(sequential,
                        "memory writes only in sequential blocks");
                MemWritePort port;
                port.addr =
                    exprToNode(*lhs.b, consts, scope, &state);
                port.data = rtl_.resize(
                    value, rtl_.memories[mit->second].width);
                port.enable = path;
                rtl_.memories[mit->second].writePorts.push_back(port);
                return;
            }
            auto sit = scope.sigs.find(base);
            require(sit != scope.sigs.end(),
                    "unknown assignment target '" + base + "'");
            require(isConst(*lhs.b, consts),
                    "bit-select writes need constant indices; use a "
                    "memory for variable addressing (line " +
                        std::to_string(lhs.line) + ")");
            int64_t idx = evalConst(*lhs.b, consts);
            SigId sig = sit->second;
            int w = rtl_.signals[sig].width;
            require(idx >= 0 && idx < w, "bit index out of range");
            NodeId cur = current(sig);
            write(sig, replaceBits(cur, static_cast<int>(idx), 1,
                                   value, w));
            return;
          }
          case ExprKind::Range: {
            auto sit = scope.sigs.find(lhs.name);
            require(sit != scope.sigs.end(),
                    "unknown assignment target '" + lhs.name + "'");
            int64_t msb = evalConst(*lhs.a, consts);
            int64_t lsb = evalConst(*lhs.b, consts);
            require(msb >= lsb && lsb >= 0, "bad part select target");
            SigId sig = sit->second;
            int w = rtl_.signals[sig].width;
            require(msb < w, "part select out of range");
            NodeId cur = current(sig);
            write(sig,
                  replaceBits(cur, static_cast<int>(lsb),
                              static_cast<int>(msb - lsb + 1), value,
                              w));
            return;
          }
          case ExprKind::Concat: {
            int total = 0;
            std::vector<int> widths;
            for (const auto &part : lhs.parts) {
                int w = lvalueWidth(*part, consts, scope);
                widths.push_back(w);
                total += w;
            }
            NodeId value_full = rtl_.resize(value, total);
            int hi = total;
            for (size_t i = 0; i < lhs.parts.size(); ++i) {
                int w = widths[i];
                NodeId piece = sliceNode(value_full, hi - w, w);
                assignLvalue(*lhs.parts[i], piece, state, consts,
                             scope, path, non_blocking, sequential);
                hi -= w;
            }
            return;
          }
          default:
            fatal("expression is not a valid assignment target "
                  "(line " +
                  std::to_string(lhs.line) + ")");
        }
    }

    /** Build {cur[w-1:off+fw], value, cur[off-1:0]}. */
    NodeId
    replaceBits(NodeId cur, int offset, int field_width, NodeId value,
                int total_width)
    {
        cur = rtl_.resize(cur, total_width);
        NodeId field = rtl_.resize(value, field_width);
        RtlNode n;
        n.op = RtlOp::Concat;
        n.width = total_width;
        if (offset + field_width < total_width) {
            n.args.push_back(sliceNode(cur, offset + field_width,
                                       total_width - offset -
                                           field_width));
        }
        n.args.push_back(field);
        if (offset > 0)
            n.args.push_back(sliceNode(cur, 0, offset));
        if (n.args.size() == 1)
            return n.args[0];
        return rtl_.addNode(std::move(n));
    }

    // ---------------------------------------------------------
    // Instances
    // ---------------------------------------------------------

    InstanceInfo
    processInstance(const Item &item, const ConstEnv &consts,
                    Scope &scope, size_t depth)
    {
        require(design_.hasModule(item.moduleName),
                "unknown module '" + item.moduleName + "' (line " +
                    std::to_string(item.line) + ")");

        std::map<std::string, int64_t> overrides;
        for (const auto &po : item.paramOverrides) {
            require(po.expr != nullptr,
                    "empty parameter override for '" + po.port + "'");
            overrides[po.port] = evalConst(*po.expr, consts);
        }

        if (opts_.blackBoxChildren)
            return processBlackBox(item, overrides, consts, scope);

        std::map<std::string, PortInfo> child_ports;
        std::string child_prefix =
            scope.prefix + item.instName + ".";
        InstanceInfo info =
            elabInstance(item.moduleName, child_prefix, overrides,
                         depth + 1, &child_ports);

        std::set<std::string> connected;
        for (const auto &conn : item.connections) {
            auto pit = child_ports.find(conn.port);
            require(pit != child_ports.end(),
                    "module '" + item.moduleName + "' has no port '" +
                        conn.port + "'");
            require(connected.insert(conn.port).second,
                    "port '" + conn.port + "' connected twice");
            const PortInfo &port = pit->second;
            if (port.dir == PortDir::Input) {
                NodeId node =
                    conn.expr
                        ? exprToNode(*conn.expr, consts, scope,
                                     nullptr)
                        : rtl_.constNode(0, port.width);
                // Drive the child port wire from the parent side.
                RtlSignal &ps = rtl_.signals[port.sig];
                require(ps.kind == SigKind::Wire,
                        "input port '" + conn.port +
                            "' must elaborate as a wire");
                fields_[port.sig].push_back(
                    {0, port.width, rtl_.resize(node, port.width),
                     item.line});
            } else {
                if (!conn.expr)
                    continue; // explicitly unconnected output
                driveLvalue(*conn.expr, rtl_.sigNode(port.sig),
                            consts, scope);
            }
        }
        for (const auto &[name, port] : child_ports) {
            if (port.dir == PortDir::Input &&
                connected.find(name) == connected.end()) {
                // Unconnected input: tie low, with a warning.
                fields_[port.sig].push_back(
                    {0, port.width, rtl_.constNode(0, port.width),
                     item.line});
                warnings_.push_back("input port '" + name +
                                    "' of instance '" +
                                    item.instName +
                                    "' is unconnected (tied to 0)");
            }
        }
        return info;
    }

    /**
     * Black-box instantiation (accounting mode): bind parameters to
     * size the ports, make input pins pseudo primary outputs and
     * output pins pseudo primary inputs, elaborate nothing inside.
     */
    InstanceInfo
    processBlackBox(const Item &item,
                    const std::map<std::string, int64_t> &overrides,
                    const ConstEnv &consts, Scope &scope)
    {
        const Module &mod = design_.module(item.moduleName);
        std::string prefix = scope.prefix + item.instName + ".";

        InstanceInfo info;
        info.moduleName = item.moduleName;
        info.path = prefix.substr(0, prefix.size() - 1);

        // Bind parameters (defaults + overrides) for port widths.
        ConstEnv child_env;
        for (const auto &p : mod.params) {
            auto it = overrides.find(p.name);
            int64_t v = it != overrides.end()
                            ? it->second
                            : evalConst(*p.value, child_env);
            child_env[p.name] = v;
            info.params[p.name] = v;
        }
        for (const auto &[name, value] : overrides) {
            (void)value;
            bool known = false;
            for (const auto &p : mod.params)
                known = known || p.name == name;
            require(known, "module '" + item.moduleName +
                               "' has no parameter '" + name + "'");
        }

        std::map<std::string, const Connection *> by_port;
        for (const auto &conn : item.connections) {
            require(by_port.emplace(conn.port, &conn).second,
                    "port '" + conn.port + "' connected twice");
        }

        for (const auto &port : mod.ports) {
            require(port.dir != PortDir::Inout,
                    "inout ports are not supported");
            int width = 1;
            if (port.msb) {
                int64_t msb = evalConst(*port.msb, child_env);
                int64_t lsb = evalConst(*port.lsb, child_env);
                require(msb >= lsb && lsb == 0,
                        "port '" + port.name +
                            "' range must be [msb:0]");
                width = static_cast<int>(msb - lsb + 1);
            }
            auto cit = by_port.find(port.name);
            const Connection *conn =
                cit == by_port.end() ? nullptr : cit->second;
            if (port.dir == PortDir::Input) {
                // Pin is a sink: a pseudo primary output driven by
                // the parent expression.
                SigId sig = rtl_.addSignal(prefix + port.name, width,
                                           SigKind::Wire);
                NodeId node =
                    conn && conn->expr
                        ? exprToNode(*conn->expr, consts, scope,
                                     nullptr)
                        : rtl_.constNode(0, width);
                fields_[sig].push_back(
                    {0, width, rtl_.resize(node, width), item.line});
                rtl_.outputs.push_back(sig);
            } else {
                // Pin is a source: a pseudo primary input feeding
                // the parent lvalue.
                SigId sig = rtl_.addSignal(prefix + port.name, width,
                                           SigKind::Input);
                rtl_.inputs.push_back(sig);
                if (conn && conn->expr) {
                    driveLvalue(*conn->expr, rtl_.sigNode(sig),
                                consts, scope);
                }
            }
        }
        // Check unknown connections.
        for (const auto &[name, conn] : by_port) {
            (void)conn;
            bool known = false;
            for (const auto &port : mod.ports)
                known = known || port.name == name;
            require(known, "module '" + item.moduleName +
                               "' has no port '" + name + "'");
        }
        return info;
    }

    // ---------------------------------------------------------
    // Driver finalization
    // ---------------------------------------------------------

    void
    finalizeDrivers()
    {
        for (SigId sig = 0; sig < rtl_.signals.size(); ++sig) {
            RtlSignal &s = rtl_.signals[sig];
            if (s.kind == SigKind::Input)
                continue;
            if (s.kind == SigKind::Reg) {
                auto fit = fields_.find(sig);
                require(fit == fields_.end(),
                        "register '" + s.name +
                            "' also driven combinationally");
                if (s.driver == invalidNode) {
                    warnings_.push_back("register '" + s.name +
                                        "' is never assigned");
                    s.driver = rtl_.sigNode(sig);
                }
                continue;
            }
            auto fit = fields_.find(sig);
            if (fit == fields_.end()) {
                warnings_.push_back("wire '" + s.name +
                                    "' is undriven (tied to 0)");
                s.driver = rtl_.constNode(0, s.width);
                continue;
            }
            auto &fields = fit->second;
            std::sort(fields.begin(), fields.end(),
                      [](const FieldAssign &a, const FieldAssign &b) {
                          return a.offset < b.offset;
                      });
            // Check overlaps, fill gaps, and build the concat
            // (most-significant first).
            int cursor = 0;
            std::vector<NodeId> parts_lsb_first;
            for (const auto &f : fields) {
                require(f.offset >= cursor,
                        "wire '" + s.name +
                            "' has multiple drivers for overlapping "
                            "bits");
                if (f.offset > cursor) {
                    warnings_.push_back(
                        "wire '" + s.name +
                        "' is partially driven (gap filled with 0)");
                    parts_lsb_first.push_back(
                        rtl_.constNode(0, f.offset - cursor));
                }
                parts_lsb_first.push_back(f.node);
                cursor = f.offset + f.width;
            }
            if (cursor < s.width) {
                warnings_.push_back(
                    "wire '" + s.name +
                    "' is partially driven (gap filled with 0)");
                parts_lsb_first.push_back(
                    rtl_.constNode(0, s.width - cursor));
            }
            if (parts_lsb_first.size() == 1) {
                s.driver = parts_lsb_first[0];
            } else {
                RtlNode n;
                n.op = RtlOp::Concat;
                n.width = s.width;
                for (auto it = parts_lsb_first.rbegin();
                     it != parts_lsb_first.rend(); ++it)
                    n.args.push_back(*it);
                s.driver = rtl_.addNode(std::move(n));
            }
        }
    }

    const Design &design_;
    const ElabOptions &opts_;
    RtlDesign rtl_;
    GenerateStats stats_;
    std::vector<std::string> warnings_;
    std::map<SigId, std::vector<FieldAssign>> fields_;
};

} // namespace

ElabResult
elaborate(const Design &design, const std::string &top,
          const ElabOptions &opts)
{
    obs::ScopedSpan span("synth.elaborate");
    Elaborator elab(design, opts);
    ElabResult result = elab.run(top);
    if (obs::enabled()) {
        static obs::Counter &runs =
            obs::counter("synth.elaborate.runs");
        static obs::Counter &instances =
            obs::counter("synth.elaborate.instances");
        runs.add(1);
        instances.add(result.top.totalInstances());
    }
    return result;
}

} // namespace ucx
