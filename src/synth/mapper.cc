#include "synth/mapper.hh"

#include <algorithm>
#include <map>
#include <set>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace ucx
{

size_t
LutMapping::fanInSum() const
{
    size_t sum = 0;
    for (const auto &lut : luts)
        sum += lut.inputs.size();
    return sum;
}

namespace
{

bool
isComb(GateOp op)
{
    return op == GateOp::Not || op == GateOp::And ||
           op == GateOp::Or || op == GateOp::Xor || op == GateOp::Mux;
}

bool
isConst(GateOp op)
{
    return op == GateOp::Const0 || op == GateOp::Const1;
}

} // namespace

LutMapping
mapToLuts(const Netlist &netlist, const FpgaFabric &fabric)
{
    obs::ScopedSpan span("synth.map_luts");
    const size_t k = static_cast<size_t>(fabric.lutInputs);
    const size_t n = netlist.gates.size();

    // Fanout counts and endpoint feeders.
    std::vector<uint32_t> fanout(n, 0);
    std::vector<bool> feeds_endpoint(n, false);
    for (GateId g = 0; g < n; ++g) {
        const Gate &gate = netlist.gates[g];
        bool endpoint_pin = gate.op == GateOp::Dff ||
                            gate.op == GateOp::MemIn ||
                            gate.op == GateOp::MemOut;
        for (GateId in : gate.in) {
            ++fanout[in];
            if (endpoint_pin)
                feeds_endpoint[in] = true;
        }
    }
    for (GateId g : netlist.outputBits)
        feeds_endpoint[g] = true;

    std::vector<bool> is_root(n, false);
    for (GateId g = 0; g < n; ++g) {
        if (!isComb(netlist.gates[g].op))
            continue;
        if (feeds_endpoint[g] || fanout[g] > 1)
            is_root[g] = true;
    }

    // Greedy cut computation in topological order.
    std::vector<std::vector<GateId>> cut(n);
    std::vector<GateId> order = netlist.topoOrder();
    auto leafset = [&](GateId f, std::set<GateId> &into) {
        const Gate &fg = netlist.gates[f];
        if (isConst(fg.op))
            return; // constants are absorbed into the LUT mask
        if (!isComb(fg.op) || is_root[f] || cut[f].empty()) {
            into.insert(f);
            return;
        }
        into.insert(cut[f].begin(), cut[f].end());
    };

    for (GateId g : order) {
        const Gate &gate = netlist.gates[g];
        if (!isComb(gate.op))
            continue;
        std::set<GateId> leaves;
        for (GateId in : gate.in)
            leafset(in, leaves);
        if (leaves.size() <= k) {
            cut[g].assign(leaves.begin(), leaves.end());
            continue;
        }
        // Overflow: the gate's fanins become LUT roots and this
        // gate's cut is just its fanins.
        std::set<GateId> direct;
        for (GateId in : gate.in) {
            if (isConst(netlist.gates[in].op))
                continue;
            if (isComb(netlist.gates[in].op))
                is_root[in] = true;
            direct.insert(in);
        }
        cut[g].assign(direct.begin(), direct.end());
    }

    // Depth via DP over roots.
    std::vector<int> level(n, 0);
    LutMapping mapping;
    for (GateId g : order) {
        if (!isComb(netlist.gates[g].op) || !is_root[g])
            continue;
        Lut lut;
        lut.root = g;
        lut.inputs = cut[g];
        if (lut.inputs.empty()) {
            // Fully constant logic still occupies one LUT.
            lut.depth = 1;
        } else {
            int deepest = 0;
            for (GateId leaf : lut.inputs)
                deepest = std::max(deepest, level[leaf]);
            lut.depth = deepest + 1;
        }
        level[g] = lut.depth;
        mapping.maxDepth = std::max(mapping.maxDepth, lut.depth);
        mapping.luts.push_back(std::move(lut));
    }
    return mapping;
}

CellMapping
mapToCells(const Netlist &netlist, const CellLibrary &library)
{
    obs::ScopedSpan span("synth.map_cells");
    CellMapping m;
    for (const Gate &gate : netlist.gates) {
        if (!CellLibrary::mapsToCell(gate.op))
            continue;
        const CellSpec &cell = library.cellFor(gate.op);
        ++m.cells;
        m.leakageUw += cell.leakUw;
        if (gate.op == GateOp::Dff) {
            ++m.seqCells;
            m.areaStorageUm2 += cell.areaUm2;
        } else {
            ++m.combCells;
            m.areaLogicUm2 += cell.areaUm2;
        }
    }
    m.areaStorageUm2 += static_cast<double>(netlist.memoryBits) *
                        library.ramBitAreaUm2;
    m.leakageUw += static_cast<double>(netlist.memoryBits) *
                   library.ramBitLeakUw;
    return m;
}

} // namespace ucx
