#include "synth/lower.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <tuple>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** Bit-blasting engine. */
class Lowerer
{
  public:
    explicit Lowerer(const RtlDesign &rtl)
        : rtl_(rtl)
    {}

    Netlist
    run()
    {
        const0_ = net_.add({GateOp::Const0, {}});
        const1_ = net_.add({GateOp::Const1, {}});

        // Primary inputs and register q bits exist up front so that
        // Sig references resolve without recursion.
        for (SigId sig = 0; sig < rtl_.signals.size(); ++sig) {
            const RtlSignal &s = rtl_.signals[sig];
            if (s.kind == SigKind::Input) {
                std::vector<GateId> bits;
                for (int b = 0; b < s.width; ++b)
                    bits.push_back(net_.add({GateOp::Input, {}}));
                sigBits_[sig] = std::move(bits);
            } else if (s.kind == SigKind::Reg) {
                std::vector<GateId> bits;
                for (int b = 0; b < s.width; ++b)
                    bits.push_back(
                        net_.add({GateOp::Dff, {invalidGate}}));
                sigBits_[sig] = std::move(bits);
            }
        }

        // Register next-state logic.
        for (SigId sig = 0; sig < rtl_.signals.size(); ++sig) {
            const RtlSignal &s = rtl_.signals[sig];
            if (s.kind != SigKind::Reg)
                continue;
            std::vector<GateId> d = bitsOf(s.driver);
            const std::vector<GateId> &q = sigBits_[sig];
            for (int b = 0; b < s.width; ++b)
                net_.gates[q[b]].in[0] = d[b];
        }

        // Primary outputs.
        for (SigId sig : rtl_.outputs) {
            std::vector<GateId> bits = bitsOfSignal(sig);
            for (GateId g : bits)
                net_.outputBits.push_back(g);
        }

        // Memory write ports become sink pins; storage bits counted
        // for area.
        for (const RtlMemory &mem : rtl_.memories) {
            net_.memoryBits +=
                static_cast<size_t>(mem.width) *
                static_cast<size_t>(mem.depth);
            for (const MemWritePort &port : mem.writePorts) {
                Gate sink;
                sink.op = GateOp::MemIn;
                sink.mem = static_cast<uint32_t>(
                    &mem - rtl_.memories.data());
                appendAddrBits(mem, port.addr, sink.in);
                for (GateId g : bitsOf(port.data))
                    sink.in.push_back(g);
                if (port.enable != invalidNode)
                    sink.in.push_back(bitsOf(port.enable)[0]);
                net_.add(std::move(sink));
            }
        }

        net_.check();
        return std::move(net_);
    }

  private:
    /** Number of address bits a memory needs. */
    static int
    addrWidth(const RtlMemory &mem)
    {
        int w = 0;
        while ((1 << w) < mem.depth)
            ++w;
        return std::max(w, 1);
    }

    void
    appendAddrBits(const RtlMemory &mem, NodeId addr,
                   std::vector<GateId> &out)
    {
        std::vector<GateId> bits = bitsOf(addr);
        int want = addrWidth(mem);
        for (int b = 0; b < want; ++b) {
            out.push_back(b < static_cast<int>(bits.size())
                              ? bits[b]
                              : const0_);
        }
    }

    // -------------------------------------------------------------
    // Hash-consed gate constructors with constant folding.
    // -------------------------------------------------------------

    GateId
    mkNot(GateId a)
    {
        if (a == const0_)
            return const1_;
        if (a == const1_)
            return const0_;
        if (net_.gates[a].op == GateOp::Not)
            return net_.gates[a].in[0];
        return hashed({GateOp::Not, {a}});
    }

    GateId
    mkAnd(GateId a, GateId b)
    {
        if (a == const0_ || b == const0_)
            return const0_;
        if (a == const1_)
            return b;
        if (b == const1_)
            return a;
        if (a == b)
            return a;
        if (a > b)
            std::swap(a, b);
        return hashed({GateOp::And, {a, b}});
    }

    GateId
    mkOr(GateId a, GateId b)
    {
        if (a == const1_ || b == const1_)
            return const1_;
        if (a == const0_)
            return b;
        if (b == const0_)
            return a;
        if (a == b)
            return a;
        if (a > b)
            std::swap(a, b);
        return hashed({GateOp::Or, {a, b}});
    }

    GateId
    mkXor(GateId a, GateId b)
    {
        if (a == const0_)
            return b;
        if (b == const0_)
            return a;
        if (a == const1_)
            return mkNot(b);
        if (b == const1_)
            return mkNot(a);
        if (a == b)
            return const0_;
        if (a > b)
            std::swap(a, b);
        return hashed({GateOp::Xor, {a, b}});
    }

    GateId
    mkMux(GateId s, GateId a, GateId b)
    {
        // s ? a : b.
        if (s == const1_)
            return a;
        if (s == const0_)
            return b;
        if (a == b)
            return a;
        if (a == const1_ && b == const0_)
            return s;
        if (a == const0_ && b == const1_)
            return mkNot(s);
        if (a == const1_)
            return mkOr(s, b);
        if (a == const0_)
            return mkAnd(mkNot(s), b);
        if (b == const0_)
            return mkAnd(s, a);
        if (b == const1_)
            return mkOr(mkNot(s), a);
        return hashed({GateOp::Mux, {s, a, b}});
    }

    GateId
    hashed(Gate gate)
    {
        auto key = std::make_tuple(gate.op, gate.in);
        auto it = hash_.find(key);
        if (it != hash_.end())
            return it->second;
        GateId id = net_.add(gate);
        hash_.emplace(std::move(key), id);
        return id;
    }

    // -------------------------------------------------------------
    // Word-level helpers
    // -------------------------------------------------------------

    std::vector<GateId>
    addWords(const std::vector<GateId> &a, const std::vector<GateId> &b,
             GateId carry_in)
    {
        ensure(a.size() == b.size(), "adder width mismatch");
        std::vector<GateId> sum(a.size());
        GateId carry = carry_in;
        for (size_t i = 0; i < a.size(); ++i) {
            GateId axb = mkXor(a[i], b[i]);
            sum[i] = mkXor(axb, carry);
            carry = mkOr(mkAnd(a[i], b[i]), mkAnd(carry, axb));
        }
        return sum;
    }

    std::vector<GateId>
    notWord(const std::vector<GateId> &a)
    {
        std::vector<GateId> out(a.size());
        for (size_t i = 0; i < a.size(); ++i)
            out[i] = mkNot(a[i]);
        return out;
    }

    GateId
    reduceTree(const std::vector<GateId> &bits,
               GateId (Lowerer::*op)(GateId, GateId), GateId empty)
    {
        if (bits.empty())
            return empty;
        std::vector<GateId> level = bits;
        while (level.size() > 1) {
            std::vector<GateId> next;
            for (size_t i = 0; i + 1 < level.size(); i += 2)
                next.push_back((this->*op)(level[i], level[i + 1]));
            if (level.size() % 2 == 1)
                next.push_back(level.back());
            level = std::move(next);
        }
        return level[0];
    }

    GateId
    lessThan(const std::vector<GateId> &a, const std::vector<GateId> &b)
    {
        ensure(a.size() == b.size(), "comparator width mismatch");
        // From LSB to MSB: lt = (~a & b) | (xnor(a,b) & lt_prev).
        GateId lt = const0_;
        for (size_t i = 0; i < a.size(); ++i) {
            GateId ne = mkXor(a[i], b[i]);
            GateId this_lt = mkAnd(mkNot(a[i]), b[i]);
            lt = mkOr(this_lt, mkAnd(mkNot(ne), lt));
        }
        return lt;
    }

    // -------------------------------------------------------------
    // Node lowering
    // -------------------------------------------------------------

    /**
     * Resolve one bit of a signal. Wires resolve through their
     * driver's wiring structure bit-by-bit so that self-referential
     * chains (a wire whose high bits are functions of its own low
     * bits, a legal and common generate idiom) are not flagged as
     * loops; only a genuine dependency of a bit on itself is.
     */
    GateId
    resolveBit(SigId sig, int b)
    {
        const RtlSignal &s = rtl_.signals[sig];
        if (s.kind == SigKind::Input || s.kind == SigKind::Reg)
            return sigBits_[sig][b];
        auto key = std::make_pair(sig, b);
        auto it = sigBitMemo_.find(key);
        if (it != sigBitMemo_.end())
            return it->second;
        require(inProgressBits_.insert(key).second,
                "combinational loop through signal '" + s.name +
                    "' bit " + std::to_string(b));
        GateId g = resolveNodeBit(s.driver, b);
        inProgressBits_.erase(key);
        sigBitMemo_[key] = g;
        return g;
    }

    /** Resolve bit @p b of a node through pure wiring ops. */
    GateId
    resolveNodeBit(NodeId id, int b)
    {
        const RtlNode &n = rtl_.nodes[id];
        switch (n.op) {
          case RtlOp::Const: {
            bool set = b < 64 && ((n.constVal >> b) & 1);
            return set ? const1_ : const0_;
          }
          case RtlOp::Sig:
            return resolveBit(n.sig, b);
          case RtlOp::Slice:
            return resolveNodeBit(n.args[0], n.lo + b);
          case RtlOp::Concat: {
            // Args are most-significant first; walk from the last
            // (least significant) accumulating widths.
            int offset = b;
            for (auto it = n.args.rbegin(); it != n.args.rend();
                 ++it) {
                int w = rtl_.nodes[*it].width;
                if (offset < w)
                    return resolveNodeBit(*it, offset);
                offset -= w;
            }
            panic("concat bit out of range");
          }
          default:
            // A real logic node: lower it fully (memoized).
            return bitsOf(id)[b];
        }
    }

    std::vector<GateId>
    bitsOfSignal(SigId sig)
    {
        const RtlSignal &s = rtl_.signals[sig];
        std::vector<GateId> bits(s.width);
        for (int b = 0; b < s.width; ++b)
            bits[b] = resolveBit(sig, b);
        return bits;
    }

    std::vector<GateId>
    bitsOf(NodeId node)
    {
        auto it = nodeBits_.find(node);
        if (it != nodeBits_.end())
            return it->second;
        std::vector<GateId> bits = lowerNode(node);
        ensure(bits.size() ==
                   static_cast<size_t>(rtl_.nodes[node].width),
               "lowering produced wrong width");
        nodeBits_[node] = bits;
        return bits;
    }

    std::vector<GateId>
    lowerNode(NodeId id)
    {
        const RtlNode &n = rtl_.nodes[id];
        switch (n.op) {
          case RtlOp::Const: {
            std::vector<GateId> bits(n.width);
            for (int b = 0; b < n.width; ++b) {
                bool set = b < 64 && ((n.constVal >> b) & 1);
                bits[b] = set ? const1_ : const0_;
            }
            return bits;
          }
          case RtlOp::Sig:
          case RtlOp::Slice:
          case RtlOp::Concat: {
            // Pure wiring: resolve bit-by-bit so self-referential
            // field chains never materialize unrelated bits.
            std::vector<GateId> bits(n.width);
            for (int b = 0; b < n.width; ++b)
                bits[b] = resolveNodeBit(id, b);
            return bits;
          }
          case RtlOp::Not:
            return notWord(bitsOf(n.args[0]));
          case RtlOp::And:
          case RtlOp::Or:
          case RtlOp::Xor: {
            std::vector<GateId> a = bitsOf(n.args[0]);
            std::vector<GateId> b = bitsOf(n.args[1]);
            std::vector<GateId> out(n.width);
            for (int i = 0; i < n.width; ++i) {
                if (n.op == RtlOp::And)
                    out[i] = mkAnd(a[i], b[i]);
                else if (n.op == RtlOp::Or)
                    out[i] = mkOr(a[i], b[i]);
                else
                    out[i] = mkXor(a[i], b[i]);
            }
            return out;
          }
          case RtlOp::RedAnd:
            return {reduceTree(bitsOf(n.args[0]), &Lowerer::mkAnd,
                               const1_)};
          case RtlOp::RedOr:
            return {reduceTree(bitsOf(n.args[0]), &Lowerer::mkOr,
                               const0_)};
          case RtlOp::RedXor:
            return {reduceTree(bitsOf(n.args[0]), &Lowerer::mkXor,
                               const0_)};
          case RtlOp::LogNot:
            return {mkNot(reduceTree(bitsOf(n.args[0]),
                                     &Lowerer::mkOr, const0_))};
          case RtlOp::Add:
            return addWords(bitsOf(n.args[0]), bitsOf(n.args[1]),
                            const0_);
          case RtlOp::Sub:
            return addWords(bitsOf(n.args[0]),
                            notWord(bitsOf(n.args[1])), const1_);
          case RtlOp::Mul: {
            std::vector<GateId> a = bitsOf(n.args[0]);
            std::vector<GateId> b = bitsOf(n.args[1]);
            std::vector<GateId> acc(n.width, const0_);
            for (int i = 0;
                 i < static_cast<int>(b.size()) && i < n.width; ++i) {
                // Partial product (a << i) & b[i].
                std::vector<GateId> partial(n.width, const0_);
                for (int j = 0; j + i < n.width &&
                                j < static_cast<int>(a.size());
                     ++j) {
                    partial[j + i] = mkAnd(a[j], b[i]);
                }
                acc = addWords(acc, partial, const0_);
            }
            return acc;
          }
          case RtlOp::Eq: {
            std::vector<GateId> a = bitsOf(n.args[0]);
            std::vector<GateId> b = bitsOf(n.args[1]);
            std::vector<GateId> eq_bits(a.size());
            for (size_t i = 0; i < a.size(); ++i)
                eq_bits[i] = mkNot(mkXor(a[i], b[i]));
            return {reduceTree(eq_bits, &Lowerer::mkAnd, const1_)};
          }
          case RtlOp::Lt:
            return {lessThan(bitsOf(n.args[0]), bitsOf(n.args[1]))};
          case RtlOp::Mux: {
            GateId s = bitsOf(n.args[0])[0];
            std::vector<GateId> a = bitsOf(n.args[1]);
            std::vector<GateId> b = bitsOf(n.args[2]);
            std::vector<GateId> out(n.width);
            for (int i = 0; i < n.width; ++i)
                out[i] = mkMux(s, a[i], b[i]);
            return out;
          }
          case RtlOp::Shl:
          case RtlOp::Shr: {
            std::vector<GateId> a = bitsOf(n.args[0]);
            const RtlNode &amt = rtl_.nodes[n.args[1]];
            bool left = n.op == RtlOp::Shl;
            if (amt.op == RtlOp::Const) {
                int k = static_cast<int>(
                    std::min<uint64_t>(amt.constVal, 1u << 20));
                return shiftConst(a, k, left);
            }
            // Barrel shifter over the meaningful amount bits.
            std::vector<GateId> sel = bitsOf(n.args[1]);
            int stages = 1;
            while ((1 << stages) < static_cast<int>(a.size()))
                ++stages;
            stages = std::min<int>(stages + 1,
                                   static_cast<int>(sel.size()));
            std::vector<GateId> cur = a;
            for (int k = 0; k < stages; ++k) {
                std::vector<GateId> shifted =
                    shiftConst(cur, 1 << k, left);
                std::vector<GateId> next(cur.size());
                for (size_t i = 0; i < cur.size(); ++i)
                    next[i] = mkMux(sel[k], shifted[i], cur[i]);
                cur = std::move(next);
            }
            // Amount bits beyond the stages force zero if set.
            if (sel.size() > static_cast<size_t>(stages)) {
                std::vector<GateId> high(sel.begin() + stages,
                                         sel.end());
                GateId any = reduceTree(high, &Lowerer::mkOr,
                                        const0_);
                for (auto &g : cur)
                    g = mkMux(any, const0_, g);
            }
            return cur;
          }
          case RtlOp::MemRead: {
            const RtlMemory &mem = rtl_.memories[n.mem];
            Gate proto;
            proto.op = GateOp::MemOut;
            proto.mem = n.mem;
            appendAddrBits(mem, n.args[0], proto.in);
            std::vector<GateId> bits(n.width);
            for (int b = 0; b < n.width; ++b) {
                Gate g = proto; // one data bit per gate
                g.bit = static_cast<uint32_t>(b);
                bits[b] = net_.add(std::move(g));
            }
            return bits;
          }
        }
        panic("unreachable node op in lowerNode");
    }

    std::vector<GateId>
    shiftConst(const std::vector<GateId> &a, int k, bool left)
    {
        std::vector<GateId> out(a.size(), const0_);
        int w = static_cast<int>(a.size());
        for (int i = 0; i < w; ++i) {
            int src = left ? i - k : i + k;
            if (src >= 0 && src < w)
                out[i] = a[src];
        }
        return out;
    }

    const RtlDesign &rtl_;
    Netlist net_;
    GateId const0_ = 0;
    GateId const1_ = 0;
    std::map<NodeId, std::vector<GateId>> nodeBits_;
    std::map<SigId, std::vector<GateId>> sigBits_;
    std::map<std::pair<SigId, int>, GateId> sigBitMemo_;
    std::set<std::pair<SigId, int>> inProgressBits_;
    std::map<std::tuple<GateOp, std::vector<GateId>>, GateId> hash_;
};

} // namespace

Netlist
lowerToGates(const RtlDesign &rtl)
{
    obs::ScopedSpan span("synth.lower");
    Lowerer lowerer(rtl);
    Netlist netlist = lowerer.run();
    if (obs::enabled()) {
        static obs::Counter &runs = obs::counter("synth.lower.runs");
        static obs::Counter &gates =
            obs::counter("synth.lower.gates");
        runs.add(1);
        gates.add(netlist.gates.size());
    }
    return netlist;
}

} // namespace ucx
