#include "synth/netlist.hh"

#include <algorithm>

#include "util/error.hh"

namespace ucx
{

const char *
gateOpName(GateOp op)
{
    switch (op) {
      case GateOp::Const0: return "const0";
      case GateOp::Const1: return "const1";
      case GateOp::Input: return "input";
      case GateOp::Not: return "not";
      case GateOp::And: return "and";
      case GateOp::Or: return "or";
      case GateOp::Xor: return "xor";
      case GateOp::Mux: return "mux";
      case GateOp::Dff: return "dff";
      case GateOp::MemOut: return "memout";
      case GateOp::MemIn: return "memin";
    }
    return "?";
}

namespace
{

size_t
expectedInputs(GateOp op)
{
    switch (op) {
      case GateOp::Const0:
      case GateOp::Const1:
      case GateOp::Input:
        return 0;
      case GateOp::Not:
      case GateOp::Dff:
        return 1;
      case GateOp::And:
      case GateOp::Or:
      case GateOp::Xor:
        return 2;
      case GateOp::Mux:
        return 3;
      case GateOp::MemOut:
      case GateOp::MemIn:
        return SIZE_MAX; // variable
    }
    return SIZE_MAX;
}

bool
isComb(GateOp op)
{
    return op == GateOp::Not || op == GateOp::And ||
           op == GateOp::Or || op == GateOp::Xor || op == GateOp::Mux;
}

} // namespace

GateId
Netlist::add(Gate gate)
{
    size_t want = expectedInputs(gate.op);
    if (want != SIZE_MAX) {
        ensure(gate.in.size() == want,
               std::string("wrong input count for gate ") +
                   gateOpName(gate.op));
    }
    for (GateId g : gate.in) {
        // invalidGate is allowed transiently: Dff d-pins are patched
        // after the next-state logic is lowered; check() rejects any
        // leftovers.
        ensure(g < gates.size() || g == invalidGate,
               "gate input out of range");
    }
    GateId id = static_cast<GateId>(gates.size());
    gates.push_back(std::move(gate));
    if (gates.back().op == GateOp::Input)
        inputBits.push_back(id);
    return id;
}

size_t
Netlist::numDffs() const
{
    size_t n = 0;
    for (const auto &g : gates)
        if (g.op == GateOp::Dff)
            ++n;
    return n;
}

size_t
Netlist::numCombGates() const
{
    size_t n = 0;
    for (const auto &g : gates)
        if (isComb(g.op))
            ++n;
    return n;
}

size_t
Netlist::numNets() const
{
    size_t n = 0;
    for (const auto &g : gates)
        if (g.op != GateOp::MemIn)
            ++n;
    return n;
}

bool
Netlist::isConeSource(GateId gate) const
{
    GateOp op = gates[gate].op;
    return op == GateOp::Input || op == GateOp::Dff ||
           op == GateOp::MemOut || op == GateOp::Const0 ||
           op == GateOp::Const1;
}

std::vector<GateId>
Netlist::coneEndpoints() const
{
    std::vector<GateId> roots;
    for (GateId g = 0; g < gates.size(); ++g) {
        const Gate &gate = gates[g];
        if (gate.op == GateOp::Dff || gate.op == GateOp::MemOut ||
            gate.op == GateOp::MemIn) {
            for (GateId in : gate.in)
                roots.push_back(in);
        }
    }
    for (GateId g : outputBits)
        roots.push_back(g);
    return roots;
}

std::vector<GateId>
Netlist::topoOrder() const
{
    // Dependencies follow combinational fanin edges only; register,
    // memory-read, and input gates are sources (their fanins are
    // sequential, not evaluation-order, edges).
    std::vector<uint32_t> indeg(gates.size(), 0);
    std::vector<std::vector<GateId>> fanout(gates.size());
    for (GateId g = 0; g < gates.size(); ++g) {
        const Gate &gate = gates[g];
        if (!isComb(gate.op) && gate.op != GateOp::MemIn)
            continue;
        indeg[g] = static_cast<uint32_t>(gate.in.size());
        for (GateId in : gate.in)
            fanout[in].push_back(g);
    }

    std::vector<GateId> order;
    order.reserve(gates.size());
    std::vector<GateId> ready;
    for (GateId g = 0; g < gates.size(); ++g)
        if (indeg[g] == 0)
            ready.push_back(g);

    size_t head = 0;
    std::vector<GateId> queue = std::move(ready);
    while (head < queue.size()) {
        GateId g = queue[head++];
        order.push_back(g);
        for (GateId next : fanout[g]) {
            if (--indeg[next] == 0)
                queue.push_back(next);
        }
    }
    require(order.size() == gates.size(),
            "combinational loop detected in netlist");
    return order;
}

void
Netlist::check() const
{
    for (const auto &g : gates)
        for (GateId in : g.in)
            ensure(in < gates.size(), "gate input out of range");
    for (GateId g : outputBits)
        ensure(g < gates.size(), "output bit out of range");
    // Topological ordering also proves combinational acyclicity.
    (void)topoOrder();
}

} // namespace ucx
