#include "synth/metrics.hh"

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "synth/lower.hh"
#include "synth/power.hh"

namespace ucx
{

SynthMetrics
synthesize(const RtlDesign &rtl)
{
    obs::ScopedSpan span("synth.synthesize");
    Netlist netlist = lowerToGates(rtl);

    SynthMetrics m;
    m.gateCount = netlist.gates.size();
    m.nets = netlist.numNets();
    m.ffs = netlist.numDffs();

    CellMapping cells = mapToCells(netlist);
    m.cells = cells.cells;
    m.areaLogicUm2 = cells.areaLogicUm2;
    m.areaStorageUm2 = cells.areaStorageUm2;

    LutMapping luts = mapToLuts(netlist);
    m.luts = luts.luts.size();
    m.lutDepth = luts.maxDepth;
    m.fanInLC = luts.fanInSum();

    {
        obs::ScopedSpan cones_span("synth.cones");
        ConeReport cones = extractCones(netlist);
        m.fanInLCExact = cones.fanInSum;
    }

    {
        obs::ScopedSpan sta_span("synth.sta");
        TimingReport fpga = staFpga(luts);
        m.freqMHz = fpga.freqMHz;
        TimingReport asic = staAsic(netlist);
        m.freqAsicMHz = asic.freqMHz;
    }

    {
        obs::ScopedSpan power_span("synth.power");
        PowerReport power = estimatePower(netlist, m.freqMHz);
        m.powerDynamicMw = power.dynamicMw;
        m.powerStaticUw = power.staticUw;
    }

    if (obs::enabled()) {
        static obs::Counter &runs =
            obs::counter("synth.synthesize.runs");
        runs.add(1);
    }
    return m;
}

} // namespace ucx
