#include "synth/metrics.hh"

#include "synth/pass.hh"

namespace ucx
{

SynthMetrics
synthesize(const RtlDesign &rtl)
{
    return synthesizeWithPasses(rtl);
}

} // namespace ucx
