#include "synth/metrics.hh"

#include "synth/lower.hh"
#include "synth/power.hh"

namespace ucx
{

SynthMetrics
synthesize(const RtlDesign &rtl)
{
    Netlist netlist = lowerToGates(rtl);

    SynthMetrics m;
    m.gateCount = netlist.gates.size();
    m.nets = netlist.numNets();
    m.ffs = netlist.numDffs();

    CellMapping cells = mapToCells(netlist);
    m.cells = cells.cells;
    m.areaLogicUm2 = cells.areaLogicUm2;
    m.areaStorageUm2 = cells.areaStorageUm2;

    LutMapping luts = mapToLuts(netlist);
    m.luts = luts.luts.size();
    m.lutDepth = luts.maxDepth;
    m.fanInLC = luts.fanInSum();

    ConeReport cones = extractCones(netlist);
    m.fanInLCExact = cones.fanInSum;

    TimingReport fpga = staFpga(luts);
    m.freqMHz = fpga.freqMHz;
    TimingReport asic = staAsic(netlist);
    m.freqAsicMHz = asic.freqMHz;

    PowerReport power = estimatePower(netlist, fpga.freqMHz);
    m.powerDynamicMw = power.dynamicMw;
    m.powerStaticUw = power.staticUw;
    return m;
}

} // namespace ucx
