/**
 * @file
 * Word-level RTL intermediate representation.
 *
 * The elaborator flattens a µHDL design into one RtlDesign: a pool
 * of typed expression nodes, a driver per wire, a next-state
 * expression per register, and explicit memory objects. The gate
 * lowering in lower.hh consumes this IR.
 */

#ifndef UCX_SYNTH_RTL_HH
#define UCX_SYNTH_RTL_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ucx
{

/** Index of a signal in RtlDesign::signals. */
using SigId = uint32_t;

/** Index of a node in RtlDesign::nodes. */
using NodeId = uint32_t;

/** Index of a memory in RtlDesign::memories. */
using MemId = uint32_t;

/** Sentinel for "no node". */
inline constexpr NodeId invalidNode = 0xffffffff;

/** Word-level operation kinds. */
enum class RtlOp
{
    Const,   ///< Constant (value, width).
    Sig,     ///< Reference to a signal's value.
    Slice,   ///< bits [lo .. lo+width-1] of the operand.
    Concat,  ///< Operands concatenated, first = most significant.
    Not,     ///< Bitwise not.
    And, Or, Xor,
    RedAnd, RedOr, RedXor, ///< Reductions to 1 bit.
    LogNot,  ///< 1-bit logical not (operand == 0).
    Add, Sub, Mul,
    Eq,      ///< 1-bit equality.
    Lt,      ///< 1-bit unsigned less-than.
    Mux,     ///< args = {sel(1), a, b}: sel ? a : b.
    Shl, Shr,///< Variable or constant shifts (amount = args[1]).
    MemRead, ///< Memory read port: args = {addr}; mem set.
};

/** One word-level expression node. */
struct RtlNode
{
    RtlOp op = RtlOp::Const;
    int width = 1;          ///< Result width in bits.
    uint64_t constVal = 0;  ///< Const payload.
    SigId sig = 0;          ///< Sig payload.
    int lo = 0;             ///< Slice low bit.
    MemId mem = 0;          ///< MemRead payload.
    std::vector<NodeId> args;
};

/** Role of a signal in the flattened design. */
enum class SigKind
{
    Wire,   ///< Combinational, has a driver node.
    Reg,    ///< Sequential, backed by flip-flops.
    Input,  ///< Primary input.
    Output, ///< Primary output (driven wire).
};

/** One flattened signal. */
struct RtlSignal
{
    std::string name; ///< Hierarchical name, e.g. "u_alu.sum".
    int width = 1;
    SigKind kind = SigKind::Wire;
    NodeId driver = invalidNode; ///< Wire/Output driver; Reg next-state.
};

/** One memory write port. */
struct MemWritePort
{
    NodeId addr = invalidNode;
    NodeId data = invalidNode;
    NodeId enable = invalidNode; ///< 1-bit; invalidNode = always on.
};

/** One flattened memory array. */
struct RtlMemory
{
    std::string name;
    int width = 1;   ///< Word width in bits.
    int depth = 1;   ///< Number of words.
    std::vector<MemWritePort> writePorts;
};

/** A flattened word-level design. */
class RtlDesign
{
  public:
    std::vector<RtlSignal> signals;
    std::vector<RtlNode> nodes;
    std::vector<RtlMemory> memories;
    std::vector<SigId> inputs;   ///< Primary inputs, in port order.
    std::vector<SigId> outputs;  ///< Primary outputs, in port order.

    /**
     * Create a signal.
     *
     * @param name  Hierarchical name (must be unique).
     * @param width Bit width >= 1.
     * @param kind  Signal role.
     * @return The new signal id.
     */
    SigId addSignal(const std::string &name, int width, SigKind kind);

    /** @return The signal id for a hierarchical name (must exist). */
    SigId findSignal(const std::string &name) const;

    /** @return True when the named signal exists. */
    bool hasSignal(const std::string &name) const;

    /** Append a node to the pool and return its id. */
    NodeId addNode(RtlNode node);

    /** @return A Const node of the given value and width. */
    NodeId constNode(uint64_t value, int width);

    /** @return A Sig node reading the given signal. */
    NodeId sigNode(SigId sig);

    /**
     * A node reinterpreted at a different width: truncated via Slice
     * or zero-extended via Concat with a Const 0.
     *
     * @param node  Source node.
     * @param width Target width.
     * @return A node of exactly @p width bits.
     */
    NodeId resize(NodeId node, int width);

    /** @return Number of registers (signals of kind Reg). */
    size_t numRegs() const;

    /** Validate internal invariants; throws UcxPanic on corruption. */
    void check() const;

  private:
    std::map<std::string, SigId> byName_;
};

} // namespace ucx

#endif // UCX_SYNTH_RTL_HH
