/**
 * @file
 * Gate-level netlist: the bit-blasted form of an RtlDesign.
 *
 * Gate kinds are the technology-independent primitives the mapper
 * later binds to standard cells (ASIC flow) or clusters into LUTs
 * (FPGA flow). Sequential boundaries (DFF outputs, memory read data,
 * primary inputs) and endpoints (DFF inputs, memory write pins,
 * primary outputs) delimit the logic cones of paper Table 3's
 * FanInLC metric.
 */

#ifndef UCX_SYNTH_NETLIST_HH
#define UCX_SYNTH_NETLIST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace ucx
{

/** Index of a gate in Netlist::gates. */
using GateId = uint32_t;

/** Sentinel for "no gate". */
inline constexpr GateId invalidGate = 0xffffffff;

/** Gate kinds. */
enum class GateOp : uint8_t
{
    Const0, ///< Tie-low.
    Const1, ///< Tie-high.
    Input,  ///< Primary input bit.
    Not,    ///< in = {a}.
    And,    ///< in = {a, b}.
    Or,     ///< in = {a, b}.
    Xor,    ///< in = {a, b}.
    Mux,    ///< in = {s, a, b}: s ? a : b.
    Dff,    ///< in = {d}; output is the q bit.
    MemOut, ///< Memory read-port data bit; in = address bits.
    MemIn,  ///< Memory write-port sink; in = addr+data+enable bits.
};

/** @return A printable gate-kind name. */
const char *gateOpName(GateOp op);

/** One gate. */
struct Gate
{
    GateOp op = GateOp::Const0;
    std::vector<GateId> in;
    /**
     * Payload for memory-port gates: the RtlDesign memory index
     * this port belongs to (MemOut: which RAM is read; MemIn: which
     * RAM is written). Unused for other kinds.
     */
    uint32_t mem = 0;
    /** MemOut only: which bit of the read word this gate carries. */
    uint32_t bit = 0;
};

/** A flat gate-level netlist. */
class Netlist
{
  public:
    std::vector<Gate> gates;
    std::vector<GateId> inputBits;   ///< All Input gates.
    std::vector<GateId> outputBits;  ///< Gates driving primary outputs.
    size_t memoryBits = 0;           ///< Total storage bits in RAMs.

    /** Append a gate and return its id. */
    GateId add(Gate gate);

    /** @return Number of flip-flops (Dff gates). */
    size_t numDffs() const;

    /** @return Number of combinational gates (Not/And/Or/Xor/Mux). */
    size_t numCombGates() const;

    /**
     * @return Number of nets: every gate output plus every primary
     *         input is one net (inputs are already gates here, so
     *         this is the gate count minus write-port sinks, which
     *         have no output net).
     */
    size_t numNets() const;

    /**
     * @return True when @p gate is a sequential/boundary *source*
     *         for cone extraction: Input, Dff (its q), MemOut, or a
     *         constant.
     */
    bool isConeSource(GateId gate) const;

    /**
     * All cone endpoints: pairs of (root gate feeding the endpoint).
     * Endpoints are DFF d-pins, primary output bits, and memory
     * write pins.
     *
     * @return The driving gate of every endpoint pin.
     */
    std::vector<GateId> coneEndpoints() const;

    /** Topological order of all gates (sources first). */
    std::vector<GateId> topoOrder() const;

    /** Validate structural invariants; throws UcxPanic on bugs. */
    void check() const;
};

} // namespace ucx

#endif // UCX_SYNTH_NETLIST_HH
