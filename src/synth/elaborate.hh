/**
 * @file
 * Elaboration: µHDL AST -> flattened word-level RTL.
 *
 * Responsibilities:
 *  - bind parameters (defaults, instance overrides, top overrides);
 *  - unroll generate-for loops and resolve generate-if branches;
 *  - flatten the instance hierarchy with dotted names;
 *  - lower always blocks to per-signal next-state/driver expressions
 *    by symbolic execution (if/case become mux trees);
 *  - turn memory reads/writes into explicit ports.
 *
 * It also records which generate loops and branches survived
 * constant propagation — the liveness information the accounting
 * procedure of paper Section 2.2 uses to find the minimal
 * non-degenerate parameterization.
 */

#ifndef UCX_SYNTH_ELABORATE_HH
#define UCX_SYNTH_ELABORATE_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "hdl/design.hh"
#include "synth/rtl.hh"

namespace ucx
{

/** Options controlling elaboration. */
struct ElabOptions
{
    /** Parameter overrides applied to the top module. */
    std::map<std::string, int64_t> topParams;
    /** Safety cap on generate/procedural loop trip counts. */
    size_t maxLoopIterations = 4096;
    /** Safety cap on hierarchy depth. */
    size_t maxDepth = 64;
    /**
     * Replace child instances with black boxes: their input pins
     * become pseudo primary outputs (so the parent's glue logic
     * stays live) and their output pins pseudo primary inputs; no
     * child logic is elaborated. This is how the accounting
     * procedure measures each module type's *own* logic exactly
     * once (paper Section 2.2's count-once rule).
     */
    bool blackBoxChildren = false;
};

/**
 * Liveness of compile-time-resolved control constructs, keyed by
 * "module:line". Two elaborations of the same module are
 * "structurally equivalent" for the accounting procedure when these
 * records have the same keys, every recorded loop executed at least
 * once in both, and every if took the same branch set.
 */
struct GenerateStats
{
    /** Iteration counts of each generate/procedural for loop. */
    std::map<std::string, std::set<int64_t>> loopTrips;
    /** Branches taken by each generate if (1 = then, 0 = else). */
    std::map<std::string, std::set<int>> ifBranches;

    /**
     * Degeneracy check of paper Section 2.2: true when some loop
     * executed zero times or some generate-if lost the branch it
     * takes in @p reference (constructs "optimized away").
     *
     * @param reference Stats of the reference (default) elaboration.
     * @return True when this elaboration is degenerate w.r.t. it.
     */
    bool degenerateAgainst(const GenerateStats &reference) const;
};

/** One node of the elaborated instance tree. */
struct InstanceInfo
{
    std::string moduleName;
    std::string path;  ///< Hierarchical instance path ("" for top).
    std::map<std::string, int64_t> params; ///< Bound values.
    std::vector<InstanceInfo> children;

    /** @return Total number of instances in this subtree. */
    size_t totalInstances() const;

    /**
     * Count instances per module type in this subtree.
     *
     * @param counts Accumulator: module name -> instance count.
     */
    void countModules(std::map<std::string, size_t> &counts) const;
};

/** Everything elaboration produces. */
struct ElabResult
{
    RtlDesign rtl;
    InstanceInfo top;
    GenerateStats stats;
    std::vector<std::string> warnings;
};

/**
 * Elaborate a design.
 *
 * @param design Parsed modules.
 * @param top    Name of the top module.
 * @param opts   Options.
 * @return The flattened design; throws UcxError on semantic errors
 *         (unknown modules/signals, non-constant widths, loops
 *         exceeding caps, ...).
 */
ElabResult elaborate(const Design &design, const std::string &top,
                     const ElabOptions &opts = {});

} // namespace ucx

#endif // UCX_SYNTH_ELABORATE_HH
