#include "synth/pass.hh"

#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "synth/const_fold.hh"
#include "synth/lower.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** Wrap a typed artifact producer into the Pass function triple. */
template <typename T>
Pass
makePass(std::string name, std::vector<std::string> deps,
         std::shared_ptr<const T> PipelineContext::*slot,
         std::function<T(PipelineContext &)> produce)
{
    Pass pass;
    pass.name = std::move(name);
    pass.deps = std::move(deps);
    pass.artifactType = &typeid(T);
    pass.run = [slot, produce = std::move(produce)](
                   PipelineContext &ctx) {
        ctx.*slot = std::make_shared<const T>(produce(ctx));
    };
    pass.save = [slot](const PipelineContext &ctx) {
        return std::static_pointer_cast<const void>(ctx.*slot);
    };
    pass.load = [slot](PipelineContext &ctx,
                       std::shared_ptr<const void> artifact) {
        ctx.*slot = std::static_pointer_cast<const T>(artifact);
    };
    return pass;
}

SynthMetrics
assembleMetrics(const PipelineContext &ctx)
{
    ensure(ctx.netlist && ctx.cells && ctx.luts && ctx.cones &&
               ctx.timing && ctx.power,
           "metrics pass needs every upstream artifact");
    SynthMetrics m;
    m.gateCount = ctx.netlist->gates.size();
    m.nets = ctx.netlist->numNets();
    m.ffs = ctx.netlist->numDffs();
    m.cells = ctx.cells->cells;
    m.areaLogicUm2 = ctx.cells->areaLogicUm2;
    m.areaStorageUm2 = ctx.cells->areaStorageUm2;
    m.luts = ctx.luts->luts.size();
    m.lutDepth = ctx.luts->maxDepth;
    m.fanInLC = ctx.luts->fanInSum();
    m.fanInLCExact = ctx.cones->fanInSum;
    m.freqMHz = ctx.timing->fpga.freqMHz;
    m.freqAsicMHz = ctx.timing->asic.freqMHz;
    m.powerDynamicMw = ctx.power->dynamicMw;
    m.powerStaticUw = ctx.power->staticUw;
    return m;
}

} // namespace

uint64_t
PassConfig::fingerprint() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (GateOp op :
         {GateOp::Not, GateOp::And, GateOp::Or, GateOp::Xor,
          GateOp::Mux, GateOp::Dff}) {
        const CellSpec &cell = library.cellFor(op);
        h = fnv1aMix(h, cell.areaUm2);
        h = fnv1aMix(h, cell.delayNs);
        h = fnv1aMix(h, cell.leakUw);
        h = fnv1aMix(h, cell.energyPj);
    }
    h = fnv1aMix(h, library.fanoutDelayNs);
    h = fnv1aMix(h, library.ramBitAreaUm2);
    h = fnv1aMix(h, library.ramBitLeakUw);
    h = fnv1aMix(h, library.dffSetupNs);
    h = fnv1aMix(h, library.dffClkQNs);
    h = fnv1aMix(h, static_cast<uint64_t>(fabric.lutInputs));
    h = fnv1aMix(h, fabric.lutDelayNs);
    h = fnv1aMix(h, fabric.routeDelayNs);
    h = fnv1aMix(h, fabric.ffOverheadNs);
    h = fnv1aMix(h, power.combActivity);
    h = fnv1aMix(h, power.seqActivity);
    h = fnv1aMix(h, power.clockActivity);
    h = fnv1aMix(h, power.clockPinEnergyPj);
    // The fold changes every downstream artifact, so it is part of
    // the technology fingerprint: folded and unfolded netlists
    // never alias in the cache.
    h = fnv1aMix(h, static_cast<uint64_t>(constFold ? 2 : 1));
    return h;
}

const std::vector<Pass> &
defaultPassList()
{
    static const std::vector<Pass> passes = [] {
        std::vector<Pass> p;
        p.push_back(makePass<Netlist>(
            "lower", {}, &PipelineContext::netlist,
            [](PipelineContext &ctx) {
                return lowerToGates(*ctx.rtl);
            }));
        p.push_back(makePass<CellMapping>(
            "techmap", {"lower"}, &PipelineContext::cells,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist != nullptr,
                       "techmap pass needs the lowered netlist");
                return mapToCells(*ctx.netlist, ctx.config.library);
            }));
        p.push_back(makePass<LutMapping>(
            "lutmap", {"lower"}, &PipelineContext::luts,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist != nullptr,
                       "lutmap pass needs the lowered netlist");
                return mapToLuts(*ctx.netlist, ctx.config.fabric);
            }));
        p.push_back(makePass<ConeReport>(
            "cones", {"lower"}, &PipelineContext::cones,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist != nullptr,
                       "cones pass needs the lowered netlist");
                return extractCones(*ctx.netlist);
            }));
        p.push_back(makePass<TimingSummary>(
            "timing", {"lower", "lutmap"},
            &PipelineContext::timing,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist && ctx.luts,
                       "timing pass needs netlist and LUT cover");
                TimingSummary t;
                t.fpga = staFpga(*ctx.luts, ctx.config.fabric);
                t.asic = staAsic(*ctx.netlist, ctx.config.library);
                return t;
            }));
        p.push_back(makePass<PowerReport>(
            "power", {"lower", "timing"}, &PipelineContext::power,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist && ctx.timing,
                       "power pass needs netlist and timing");
                return estimatePower(*ctx.netlist,
                                     ctx.timing->fpga.freqMHz,
                                     ctx.config.library,
                                     ctx.config.power);
            }));
        p.push_back(makePass<SynthMetrics>(
            "metrics",
            {"lower", "techmap", "lutmap", "cones", "timing",
             "power"},
            &PipelineContext::metrics,
            [](PipelineContext &ctx) {
                return assembleMetrics(ctx);
            }));
        return p;
    }();
    return passes;
}

std::vector<Pass>
passListFor(const PassConfig &config)
{
    std::vector<Pass> passes = defaultPassList();
    if (!config.constFold)
        return passes;
    Pass fold = makePass<Netlist>(
        "constfold", {"lower"}, &PipelineContext::netlist,
        [](PipelineContext &ctx) {
            ensure(ctx.netlist != nullptr,
                   "constfold pass needs the lowered netlist");
            return constFoldNetlist(*ctx.netlist);
        });
    // Everything that consumed the raw netlist now consumes the
    // folded one (same context slot, stricter ordering).
    for (Pass &pass : passes) {
        bool readsNetlist = false;
        for (const std::string &dep : pass.deps)
            if (dep == "lower")
                readsNetlist = true;
        if (readsNetlist)
            pass.deps.push_back("constfold");
    }
    auto it = passes.begin();
    while (it != passes.end() && it->name != "lower")
        ++it;
    ensure(it != passes.end(), "default pipeline has no lower pass");
    passes.insert(it + 1, std::move(fold));
    return passes;
}

namespace
{

/**
 * Execute one pass over a context — cache-aware, with the span,
 * trace, and counter instrumentation. Shared by the sequential
 * runner and the graph nodes of submitPasses; caching goes through
 * the cache's single-flight layer, so two pipelines of the same
 * design racing on one artifact compute it once.
 */
void
runOnePass(const Pass &pass, PipelineContext &ctx,
           const PipelineRun &run)
{
    obs::ScopedSpan span("synth.pass." + pass.name);
    obs::TraceScope trace("synth.pass");
    if (trace.active())
        trace.arg("pass", pass.name);
    bool ran = false;
    if (run.cache) {
        CacheKey key = run.base.child(pass.name);
        auto artifact = run.cache->getOrComputeRaw(
            key, *pass.artifactType,
            [&pass, &ctx, &ran]() -> std::shared_ptr<const void> {
                pass.run(ctx);
                ran = true;
                return pass.save(ctx);
            });
        if (!ran)
            pass.load(ctx, std::move(artifact));
        trace.arg("cache", ran ? "miss" : "hit");
        if (!ran && obs::enabled()) {
            obs::counter("synth.pass." + pass.name + ".cache_hits")
                .add(1);
        }
    } else {
        pass.run(ctx);
        ran = true;
        trace.arg("cache", "off");
    }
    if (ran && obs::enabled()) {
        obs::counter("synth.pass." + pass.name + ".runs").add(1);
    }
}

/**
 * Check that every declared dep that appears in @p passes at all
 * appears *before* its dependent (a sequential list must be a
 * topological order of the declared DAG).
 */
void
validatePassOrder(const std::vector<Pass> &passes)
{
    std::unordered_set<std::string> all;
    for (const Pass &pass : passes)
        all.insert(pass.name);
    std::unordered_set<std::string> seen;
    for (const Pass &pass : passes) {
        for (const std::string &dep : pass.deps) {
            ensure(!all.count(dep) || seen.count(dep),
                   "pass list runs '" + pass.name +
                       "' before its dependency '" + dep + "'");
        }
        seen.insert(pass.name);
    }
}

} // namespace

PipelineContext
runPasses(const RtlDesign &rtl, const std::vector<Pass> &passes,
          const PassConfig &config, const PipelineRun &run)
{
    require(!run.cache || !run.base.empty(),
            "a cached pipeline run needs a base key");
    validatePassOrder(passes);
    PipelineContext ctx;
    ctx.rtl = &rtl;
    ctx.config = config;
    for (const Pass &pass : passes)
        runOnePass(pass, ctx, run);
    return ctx;
}

std::vector<TaskHandle>
submitPasses(TaskGraph &graph, const TaskHandle &after,
             std::shared_ptr<PipelineContext> ctx,
             const std::vector<Pass> &passes, const PipelineRun &run)
{
    require(!run.cache || !run.base.empty(),
            "a cached pipeline run needs a base key");
    require(ctx != nullptr, "submitPasses needs a context");
    std::unordered_map<std::string, TaskHandle> byName;
    std::vector<TaskHandle> handles;
    handles.reserve(passes.size());
    for (const Pass &pass : passes) {
        std::vector<TaskHandle> deps;
        deps.reserve(pass.deps.size() + 1);
        if (after.valid())
            deps.push_back(after);
        for (const std::string &dep : pass.deps) {
            auto it = byName.find(dep);
            ensure(it != byName.end(),
                   "pass '" + pass.name + "' depends on '" + dep +
                       "', which is not in the submitted list");
            deps.push_back(it->second);
        }
        // The pass is copied into the node: the caller's list may
        // be temporary, while the node runs whenever its deps
        // finish.
        TaskHandle handle =
            graph
                .submitAfter(
                    deps,
                    [pass, ctx, run] { runOnePass(pass, *ctx, run); },
                    "synth.pass." + pass.name)
                .handle();
        byName.emplace(pass.name, handle);
        handles.push_back(handle);
    }
    return handles;
}

SynthMetrics
synthesizeWithPasses(const RtlDesign &rtl, const PassConfig &config,
                     const PipelineRun &run)
{
    obs::ScopedSpan span("synth.synthesize");
    PipelineContext ctx =
        runPasses(rtl, passListFor(config), config, run);
    ensure(ctx.metrics != nullptr,
           "pipeline finished without a metrics artifact");
    if (obs::enabled()) {
        static obs::Counter &runs =
            obs::counter("synth.synthesize.runs");
        runs.add(1);
    }
    return *ctx.metrics;
}

CacheKey
elabCacheKey(const Design &design, const std::string &top,
             const ElabOptions &opts)
{
    CacheKey key("elab");
    key.addHash(fnv1a(design.sourceText()));
    key.add(top);
    key.addParams(opts.topParams);
    key.add(static_cast<int64_t>(opts.maxLoopIterations));
    key.add(static_cast<int64_t>(opts.maxDepth));
    key.add(opts.blackBoxChildren ? "bb" : "full");
    return key;
}

CacheKey
synthCacheKey(const CacheKey &elab_key, const PassConfig &config)
{
    CacheKey key = elab_key;
    key.add("synth");
    key.addHash(config.fingerprint());
    return key;
}

std::shared_ptr<const ElabResult>
elaborateShared(const Design &design, const std::string &top,
                const ElabOptions &opts, ArtifactCache *cache)
{
    if (!cache) {
        return std::make_shared<const ElabResult>(
            elaborate(design, top, opts));
    }
    return cache->getOrCompute<ElabResult>(
        elabCacheKey(design, top, opts),
        [&] { return elaborate(design, top, opts); });
}

} // namespace ucx
