#include "synth/pass.hh"

#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "synth/lower.hh"
#include "util/error.hh"

namespace ucx
{

namespace
{

/** Wrap a typed artifact producer into the Pass function triple. */
template <typename T>
Pass
makePass(std::string name,
         std::shared_ptr<const T> PipelineContext::*slot,
         std::function<T(PipelineContext &)> produce)
{
    Pass pass;
    pass.name = std::move(name);
    pass.artifactType = &typeid(T);
    pass.run = [slot, produce = std::move(produce)](
                   PipelineContext &ctx) {
        ctx.*slot = std::make_shared<const T>(produce(ctx));
    };
    pass.save = [slot](const PipelineContext &ctx) {
        return std::static_pointer_cast<const void>(ctx.*slot);
    };
    pass.load = [slot](PipelineContext &ctx,
                       std::shared_ptr<const void> artifact) {
        ctx.*slot = std::static_pointer_cast<const T>(artifact);
    };
    return pass;
}

SynthMetrics
assembleMetrics(const PipelineContext &ctx)
{
    ensure(ctx.netlist && ctx.cells && ctx.luts && ctx.cones &&
               ctx.timing && ctx.power,
           "metrics pass needs every upstream artifact");
    SynthMetrics m;
    m.gateCount = ctx.netlist->gates.size();
    m.nets = ctx.netlist->numNets();
    m.ffs = ctx.netlist->numDffs();
    m.cells = ctx.cells->cells;
    m.areaLogicUm2 = ctx.cells->areaLogicUm2;
    m.areaStorageUm2 = ctx.cells->areaStorageUm2;
    m.luts = ctx.luts->luts.size();
    m.lutDepth = ctx.luts->maxDepth;
    m.fanInLC = ctx.luts->fanInSum();
    m.fanInLCExact = ctx.cones->fanInSum;
    m.freqMHz = ctx.timing->fpga.freqMHz;
    m.freqAsicMHz = ctx.timing->asic.freqMHz;
    m.powerDynamicMw = ctx.power->dynamicMw;
    m.powerStaticUw = ctx.power->staticUw;
    return m;
}

} // namespace

uint64_t
PassConfig::fingerprint() const
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (GateOp op :
         {GateOp::Not, GateOp::And, GateOp::Or, GateOp::Xor,
          GateOp::Mux, GateOp::Dff}) {
        const CellSpec &cell = library.cellFor(op);
        h = fnv1aMix(h, cell.areaUm2);
        h = fnv1aMix(h, cell.delayNs);
        h = fnv1aMix(h, cell.leakUw);
        h = fnv1aMix(h, cell.energyPj);
    }
    h = fnv1aMix(h, library.fanoutDelayNs);
    h = fnv1aMix(h, library.ramBitAreaUm2);
    h = fnv1aMix(h, library.ramBitLeakUw);
    h = fnv1aMix(h, library.dffSetupNs);
    h = fnv1aMix(h, library.dffClkQNs);
    h = fnv1aMix(h, static_cast<uint64_t>(fabric.lutInputs));
    h = fnv1aMix(h, fabric.lutDelayNs);
    h = fnv1aMix(h, fabric.routeDelayNs);
    h = fnv1aMix(h, fabric.ffOverheadNs);
    h = fnv1aMix(h, power.combActivity);
    h = fnv1aMix(h, power.seqActivity);
    h = fnv1aMix(h, power.clockActivity);
    h = fnv1aMix(h, power.clockPinEnergyPj);
    return h;
}

const std::vector<Pass> &
defaultPassList()
{
    static const std::vector<Pass> passes = [] {
        std::vector<Pass> p;
        p.push_back(makePass<Netlist>(
            "lower", &PipelineContext::netlist,
            [](PipelineContext &ctx) {
                return lowerToGates(*ctx.rtl);
            }));
        p.push_back(makePass<CellMapping>(
            "techmap", &PipelineContext::cells,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist != nullptr,
                       "techmap pass needs the lowered netlist");
                return mapToCells(*ctx.netlist, ctx.config.library);
            }));
        p.push_back(makePass<LutMapping>(
            "lutmap", &PipelineContext::luts,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist != nullptr,
                       "lutmap pass needs the lowered netlist");
                return mapToLuts(*ctx.netlist, ctx.config.fabric);
            }));
        p.push_back(makePass<ConeReport>(
            "cones", &PipelineContext::cones,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist != nullptr,
                       "cones pass needs the lowered netlist");
                return extractCones(*ctx.netlist);
            }));
        p.push_back(makePass<TimingSummary>(
            "timing", &PipelineContext::timing,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist && ctx.luts,
                       "timing pass needs netlist and LUT cover");
                TimingSummary t;
                t.fpga = staFpga(*ctx.luts, ctx.config.fabric);
                t.asic = staAsic(*ctx.netlist, ctx.config.library);
                return t;
            }));
        p.push_back(makePass<PowerReport>(
            "power", &PipelineContext::power,
            [](PipelineContext &ctx) {
                ensure(ctx.netlist && ctx.timing,
                       "power pass needs netlist and timing");
                return estimatePower(*ctx.netlist,
                                     ctx.timing->fpga.freqMHz,
                                     ctx.config.library,
                                     ctx.config.power);
            }));
        p.push_back(makePass<SynthMetrics>(
            "metrics", &PipelineContext::metrics,
            [](PipelineContext &ctx) {
                return assembleMetrics(ctx);
            }));
        return p;
    }();
    return passes;
}

PipelineContext
runPasses(const RtlDesign &rtl, const std::vector<Pass> &passes,
          const PassConfig &config, const PipelineRun &run)
{
    require(!run.cache || !run.base.empty(),
            "a cached pipeline run needs a base key");
    PipelineContext ctx;
    ctx.rtl = &rtl;
    ctx.config = config;
    for (const Pass &pass : passes) {
        obs::ScopedSpan span("synth.pass." + pass.name);
        obs::TraceScope trace("synth.pass");
        if (trace.active())
            trace.arg("pass", pass.name);
        if (run.cache) {
            CacheKey key = run.base.child(pass.name);
            if (auto cached =
                    run.cache->getRaw(key, *pass.artifactType)) {
                pass.load(ctx, std::move(cached));
                trace.arg("cache", "hit");
                if (obs::enabled()) {
                    obs::counter("synth.pass." + pass.name +
                                 ".cache_hits")
                        .add(1);
                }
                continue;
            }
            pass.run(ctx);
            run.cache->putRaw(key, pass.save(ctx),
                              *pass.artifactType);
            trace.arg("cache", "miss");
        } else {
            pass.run(ctx);
            trace.arg("cache", "off");
        }
        if (obs::enabled()) {
            obs::counter("synth.pass." + pass.name + ".runs")
                .add(1);
        }
    }
    return ctx;
}

SynthMetrics
synthesizeWithPasses(const RtlDesign &rtl, const PassConfig &config,
                     const PipelineRun &run)
{
    obs::ScopedSpan span("synth.synthesize");
    PipelineContext ctx =
        runPasses(rtl, defaultPassList(), config, run);
    ensure(ctx.metrics != nullptr,
           "pipeline finished without a metrics artifact");
    if (obs::enabled()) {
        static obs::Counter &runs =
            obs::counter("synth.synthesize.runs");
        runs.add(1);
    }
    return *ctx.metrics;
}

CacheKey
elabCacheKey(const Design &design, const std::string &top,
             const ElabOptions &opts)
{
    CacheKey key("elab");
    key.addHash(fnv1a(design.sourceText()));
    key.add(top);
    key.addParams(opts.topParams);
    key.add(static_cast<int64_t>(opts.maxLoopIterations));
    key.add(static_cast<int64_t>(opts.maxDepth));
    key.add(opts.blackBoxChildren ? "bb" : "full");
    return key;
}

CacheKey
synthCacheKey(const CacheKey &elab_key, const PassConfig &config)
{
    CacheKey key = elab_key;
    key.add("synth");
    key.addHash(config.fingerprint());
    return key;
}

std::shared_ptr<const ElabResult>
elaborateShared(const Design &design, const std::string &top,
                const ElabOptions &opts, ArtifactCache *cache)
{
    if (!cache) {
        return std::make_shared<const ElabResult>(
            elaborate(design, top, opts));
    }
    return cache->getOrCompute<ElabResult>(
        elabCacheKey(design, top, opts),
        [&] { return elaborate(design, top, opts); });
}

} // namespace ucx
