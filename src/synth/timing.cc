#include "synth/timing.hh"

#include <algorithm>

namespace ucx
{

namespace
{

bool
isComb(GateOp op)
{
    return op == GateOp::Not || op == GateOp::And ||
           op == GateOp::Or || op == GateOp::Xor || op == GateOp::Mux;
}

} // namespace

TimingReport
staAsic(const Netlist &netlist, const CellLibrary &library)
{
    const size_t n = netlist.gates.size();
    std::vector<uint32_t> fanout(n, 0);
    for (const Gate &gate : netlist.gates)
        for (GateId in : gate.in)
            ++fanout[in];

    // Arrival time at each gate output.
    std::vector<double> arrival(n, 0.0);
    std::vector<GateId> order = netlist.topoOrder();
    double worst = 0.0;
    for (GateId g : order) {
        const Gate &gate = netlist.gates[g];
        if (gate.op == GateOp::Dff) {
            arrival[g] = library.dffClkQNs;
            continue;
        }
        if (gate.op == GateOp::MemOut) {
            // RAM access time modeled as one FF delay.
            arrival[g] = library.dffClkQNs;
            continue;
        }
        if (!isComb(gate.op)) {
            arrival[g] = 0.0;
            continue;
        }
        double in_max = 0.0;
        for (GateId in : gate.in)
            in_max = std::max(in_max, arrival[in]);
        const CellSpec &cell = library.cellFor(gate.op);
        double load = library.fanoutDelayNs *
                      static_cast<double>(std::max<uint32_t>(
                          fanout[g], 1u) - 1u);
        arrival[g] = in_max + cell.delayNs + load;
    }
    // Endpoints: FF d-pins, memory pins, primary outputs.
    for (GateId g = 0; g < n; ++g) {
        const Gate &gate = netlist.gates[g];
        if (gate.op == GateOp::Dff || gate.op == GateOp::MemIn ||
            gate.op == GateOp::MemOut) {
            for (GateId in : gate.in) {
                worst = std::max(worst,
                                 arrival[in] + library.dffSetupNs);
            }
        }
    }
    for (GateId g : netlist.outputBits)
        worst = std::max(worst, arrival[g]);

    TimingReport report;
    // A design with no logic still has FF-to-FF overhead.
    report.criticalPathNs =
        std::max(worst, library.dffClkQNs + library.dffSetupNs);
    report.freqMHz = 1000.0 / report.criticalPathNs;
    return report;
}

TimingReport
staFpga(const LutMapping &mapping, const FpgaFabric &fabric)
{
    TimingReport report;
    double levels = static_cast<double>(std::max(mapping.maxDepth, 1));
    report.criticalPathNs =
        levels * (fabric.lutDelayNs + fabric.routeDelayNs) +
        fabric.ffOverheadNs;
    report.freqMHz = 1000.0 / report.criticalPathNs;
    return report;
}

} // namespace ucx
