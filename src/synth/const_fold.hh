/**
 * @file
 * Constant folding over the gate-level netlist.
 *
 * A synthesis optimisation driven by the dfa constant lattice:
 * one topological sweep evaluates every combinational gate (the
 * netlist is a DAG once Dff/MemOut outputs are treated as
 * opaque sources), then the netlist is rebuilt with folded gates
 * replaced by canonical tie cells, identity gates (x&1, x|0, x^0,
 * double inverters, muxes with settled selects) bypassed, and
 * combinational logic no endpoint can observe dropped. State
 * elements and ports are never removed — the fold changes the
 * combinational cloud only, so flop/memory/port counts stay
 * comparable before and after.
 */

#ifndef UCX_SYNTH_CONST_FOLD_HH
#define UCX_SYNTH_CONST_FOLD_HH

#include <cstdint>

#include "synth/netlist.hh"

namespace ucx
{

/** What one fold did, for reporting and tests. */
struct FoldStats
{
    uint64_t foldedConst = 0; ///< Comb gates settled to 0/1.
    uint64_t aliased = 0;     ///< Identity gates bypassed.
    uint64_t removedDead = 0; ///< Unreachable comb gates dropped.
    uint64_t cellsBefore = 0; ///< Comb gates in the input.
    uint64_t cellsAfter = 0;  ///< Comb gates in the output.
};

/**
 * Fold constants through a netlist.
 *
 * @param src   Lowered netlist.
 * @param stats Optional fold accounting.
 * @return A new, checked netlist computing the same function.
 */
Netlist constFoldNetlist(const Netlist &src,
                         FoldStats *stats = nullptr);

} // namespace ucx

#endif // UCX_SYNTH_CONST_FOLD_HH
