/**
 * @file
 * Synthesis metrics: the nine synthesis columns of paper Table 3,
 * produced by running the pass-manager pipeline (pass.hh) over an
 * elaborated design. synthesize() is the uncached convenience entry
 * point; synthesizeWithPasses() adds pass configuration and artifact
 * memoization.
 */

#ifndef UCX_SYNTH_METRICS_HH
#define UCX_SYNTH_METRICS_HH

#include "synth/cones.hh"
#include "synth/mapper.hh"
#include "synth/rtl.hh"
#include "synth/timing.hh"

namespace ucx
{

/** All synthesis metrics of one design. */
struct SynthMetrics
{
    size_t fanInLC = 0;      ///< LUT-input sum (paper's estimate).
    size_t fanInLCExact = 0; ///< Cone-traversal FanInLC.
    size_t nets = 0;         ///< Nets in the mapped netlist.
    size_t cells = 0;        ///< Standard cells.
    size_t ffs = 0;          ///< Flip-flops.
    double areaLogicUm2 = 0; ///< AreaL.
    double areaStorageUm2 = 0; ///< AreaS.
    double powerDynamicMw = 0; ///< PowerD at the FPGA frequency.
    double powerStaticUw = 0;  ///< PowerS.
    double freqMHz = 0;      ///< FPGA frequency (Table 3 Freq).
    double freqAsicMHz = 0;  ///< ASIC frequency (extra diagnostic).
    size_t luts = 0;         ///< LUT count from the FPGA cover.
    int lutDepth = 0;        ///< LUT levels on the critical path.
    size_t gateCount = 0;    ///< Pre-mapping gate count.
};

/**
 * Run the full synthesis flow on an elaborated design.
 *
 * @param rtl Elaborated RTL.
 * @return All synthesis metrics.
 */
SynthMetrics synthesize(const RtlDesign &rtl);

} // namespace ucx

#endif // UCX_SYNTH_METRICS_HH
