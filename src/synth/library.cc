#include "synth/library.hh"

#include "util/error.hh"

namespace ucx
{

const CellLibrary &
CellLibrary::generic180()
{
    static const CellLibrary lib = [] {
        CellLibrary l;
        l.inv_ = {"INVX1", 9.4, 0.08, 0.010, 0.030};
        l.and2_ = {"AND2X1", 16.6, 0.14, 0.018, 0.055};
        l.or2_ = {"OR2X1", 16.6, 0.14, 0.018, 0.055};
        l.xor2_ = {"XOR2X1", 26.4, 0.19, 0.028, 0.095};
        l.mux2_ = {"MUX2X1", 29.8, 0.21, 0.030, 0.110};
        l.dff_ = {"DFFX1", 50.2, 0.25, 0.055, 0.210};
        return l;
    }();
    return lib;
}

const CellSpec &
CellLibrary::cellFor(GateOp op) const
{
    switch (op) {
      case GateOp::Not: return inv_;
      case GateOp::And: return and2_;
      case GateOp::Or: return or2_;
      case GateOp::Xor: return xor2_;
      case GateOp::Mux: return mux2_;
      case GateOp::Dff: return dff_;
      default:
        fatal(std::string("no cell for gate kind ") + gateOpName(op));
    }
}

bool
CellLibrary::mapsToCell(GateOp op)
{
    switch (op) {
      case GateOp::Not:
      case GateOp::And:
      case GateOp::Or:
      case GateOp::Xor:
      case GateOp::Mux:
      case GateOp::Dff:
        return true;
      default:
        return false;
    }
}

const FpgaFabric &
FpgaFabric::stratix2Like()
{
    static const FpgaFabric fabric;
    return fabric;
}

} // namespace ucx
