#include "synth/cones.hh"

#include <algorithm>
#include <set>

namespace ucx
{

ConeReport
extractCones(const Netlist &netlist)
{
    ConeReport report;
    std::vector<GateId> endpoints = netlist.coneEndpoints();

    // Reused scratch marks to avoid per-cone allocation.
    std::vector<uint32_t> mark(netlist.gates.size(), 0);
    uint32_t stamp = 0;

    for (GateId root : endpoints) {
        ++stamp;
        Cone cone;
        cone.endpointDriver = root;

        std::vector<GateId> stack = {root};
        std::set<GateId> inputs;
        while (!stack.empty()) {
            GateId g = stack.back();
            stack.pop_back();
            if (mark[g] == stamp)
                continue;
            mark[g] = stamp;
            const Gate &gate = netlist.gates[g];
            if (netlist.isConeSource(g)) {
                // Constants are not real cone inputs.
                if (gate.op != GateOp::Const0 &&
                    gate.op != GateOp::Const1) {
                    inputs.insert(g);
                }
                continue;
            }
            ++cone.gateCount;
            for (GateId in : gate.in)
                stack.push_back(in);
        }
        cone.inputCount = inputs.size();
        report.fanInSum += cone.inputCount;
        report.maxInputs = std::max(report.maxInputs,
                                    cone.inputCount);
        report.cones.push_back(std::move(cone));
    }
    return report;
}

} // namespace ucx
