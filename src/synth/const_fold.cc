#include "synth/const_fold.hh"

#include "util/error.hh"

namespace ucx
{

namespace
{

/** Per-gate fold state: settled bit, or an alias to another gate. */
struct FoldState
{
    /** -1 = runtime-dependent, else the settled bit value. */
    std::vector<int8_t> val;
    /** alias[g] != g: g's output equals that gate's output. */
    std::vector<GateId> alias;

    explicit FoldState(size_t n) : val(n, -1), alias(n)
    {
        for (GateId g = 0; g < n; ++g)
            alias[g] = g;
    }

    /** Follow the alias chain with path compression. */
    GateId resolve(GateId g)
    {
        GateId root = g;
        while (alias[root] != root)
            root = alias[root];
        while (alias[g] != root) {
            GateId next = alias[g];
            alias[g] = root;
            g = next;
        }
        return root;
    }

    int8_t valOf(GateId g) { return val[resolve(g)]; }

    /** Record that @p g 's output equals @p target 's. */
    void aliasTo(GateId g, GateId target)
    {
        alias[g] = resolve(target);
        val[g] = val[alias[g]];
    }
};

} // namespace

Netlist
constFoldNetlist(const Netlist &src, FoldStats *stats)
{
    const size_t n = src.gates.size();
    FoldState st(n);

    auto isComb = [&](GateOp op) {
        return op == GateOp::Not || op == GateOp::And ||
               op == GateOp::Or || op == GateOp::Xor ||
               op == GateOp::Mux;
    };

    // ---- One topological evaluation sweep. ---------------------
    // Dff/MemOut/Input outputs are opaque (Top); everything
    // combinational either settles to a bit, collapses onto one of
    // its inputs, or stays.
    for (GateId g : src.topoOrder()) {
        const Gate &gate = src.gates[g];
        switch (gate.op) {
          case GateOp::Const0:
            st.val[g] = 0;
            break;
          case GateOp::Const1:
            st.val[g] = 1;
            break;
          case GateOp::Not: {
            int8_t a = st.valOf(gate.in[0]);
            if (a >= 0) {
                st.val[g] = a ? 0 : 1;
            } else {
                GateId inner = st.resolve(gate.in[0]);
                if (src.gates[inner].op == GateOp::Not)
                    st.aliasTo(g, src.gates[inner].in[0]);
            }
            break;
          }
          case GateOp::And: {
            int8_t a = st.valOf(gate.in[0]);
            int8_t b = st.valOf(gate.in[1]);
            if (a == 0 || b == 0)
                st.val[g] = 0;
            else if (a == 1 && b == 1)
                st.val[g] = 1;
            else if (a == 1)
                st.aliasTo(g, gate.in[1]);
            else if (b == 1)
                st.aliasTo(g, gate.in[0]);
            break;
          }
          case GateOp::Or: {
            int8_t a = st.valOf(gate.in[0]);
            int8_t b = st.valOf(gate.in[1]);
            if (a == 1 || b == 1)
                st.val[g] = 1;
            else if (a == 0 && b == 0)
                st.val[g] = 0;
            else if (a == 0)
                st.aliasTo(g, gate.in[1]);
            else if (b == 0)
                st.aliasTo(g, gate.in[0]);
            break;
          }
          case GateOp::Xor: {
            int8_t a = st.valOf(gate.in[0]);
            int8_t b = st.valOf(gate.in[1]);
            if (a >= 0 && b >= 0)
                st.val[g] = static_cast<int8_t>(a ^ b);
            else if (a == 0)
                st.aliasTo(g, gate.in[1]);
            else if (b == 0)
                st.aliasTo(g, gate.in[0]);
            break;
          }
          case GateOp::Mux: {
            int8_t s = st.valOf(gate.in[0]);
            int8_t a = st.valOf(gate.in[1]);
            int8_t b = st.valOf(gate.in[2]);
            if (s == 1)
                st.aliasTo(g, gate.in[1]);
            else if (s == 0)
                st.aliasTo(g, gate.in[2]);
            else if (st.resolve(gate.in[1]) ==
                     st.resolve(gate.in[2]))
                st.aliasTo(g, gate.in[1]);
            else if (a >= 0 && b >= 0 && a == b)
                st.val[g] = a;
            break;
          }
          default:
            break; // Input / Dff / MemOut / MemIn: opaque.
        }
    }

    // ---- Liveness over the folded graph. -----------------------
    // A reference to gate x really points at resolve(x), or at a
    // canonical tie cell when that gate settled.
    std::vector<uint8_t> live(n, 0);
    bool needConst0 = false;
    bool needConst1 = false;
    std::vector<GateId> stack;
    auto reach = [&](GateId g) {
        GateId r = st.resolve(g);
        if (st.val[r] >= 0) {
            (st.val[r] ? needConst1 : needConst0) = true;
            return;
        }
        if (!live[r]) {
            live[r] = 1;
            stack.push_back(r);
        }
    };
    for (GateId g : src.outputBits)
        reach(g);
    for (GateId g = 0; g < n; ++g) {
        const Gate &gate = src.gates[g];
        if (gate.op == GateOp::Dff || gate.op == GateOp::MemIn ||
            gate.op == GateOp::MemOut) {
            live[g] = 1;
            stack.push_back(g);
        }
    }
    while (!stack.empty()) {
        GateId g = stack.back();
        stack.pop_back();
        for (GateId in : src.gates[g].in)
            reach(in);
    }

    // ---- Rebuild. ----------------------------------------------
    // State elements and ports always survive; a combinational
    // gate survives only when it neither settled nor aliased and
    // some endpoint observes it. Ids are assigned ascending over
    // the old order (canonical tie cells first), so the result is
    // deterministic and input/output bit order is preserved.
    Netlist out;
    GateId const0 = invalidGate;
    GateId const1 = invalidGate;
    if (needConst0) {
        const0 = static_cast<GateId>(out.gates.size());
        Gate tie;
        tie.op = GateOp::Const0;
        out.gates.push_back(std::move(tie));
    }
    if (needConst1) {
        const1 = static_cast<GateId>(out.gates.size());
        Gate tie;
        tie.op = GateOp::Const1;
        out.gates.push_back(std::move(tie));
    }

    std::vector<GateId> newId(n, invalidGate);
    for (GateId g = 0; g < n; ++g) {
        const Gate &gate = src.gates[g];
        bool keep = false;
        switch (gate.op) {
          case GateOp::Input:
          case GateOp::Dff:
          case GateOp::MemOut:
          case GateOp::MemIn:
            keep = true;
            break;
          case GateOp::Const0:
          case GateOp::Const1:
            keep = false; // replaced by the canonical tie cells
            break;
          default:
            keep = st.resolve(g) == g && st.val[g] < 0 && live[g];
            break;
        }
        if (keep) {
            newId[g] = static_cast<GateId>(out.gates.size());
            out.gates.push_back(gate);
        }
    }

    auto mapRef = [&](GateId g) {
        GateId r = st.resolve(g);
        if (st.val[r] >= 0)
            return st.val[r] ? const1 : const0;
        ensure(newId[r] != invalidGate,
               "const fold dropped a referenced gate");
        return newId[r];
    };
    for (GateId g = 0; g < n; ++g) {
        if (newId[g] == invalidGate)
            continue;
        Gate &rebuilt = out.gates[newId[g]];
        for (GateId &in : rebuilt.in)
            in = mapRef(in);
    }
    for (GateId g : src.inputBits)
        out.inputBits.push_back(newId[g]);
    for (GateId g : src.outputBits)
        out.outputBits.push_back(mapRef(g));
    out.memoryBits = src.memoryBits;
    out.check();

    if (stats) {
        *stats = FoldStats{};
        stats->cellsBefore = src.numCombGates();
        stats->cellsAfter = out.numCombGates();
        for (GateId g = 0; g < n; ++g) {
            if (!isComb(src.gates[g].op))
                continue;
            if (st.val[g] >= 0)
                ++stats->foldedConst;
            else if (st.resolve(g) != g)
                ++stats->aliased;
            else if (!live[g])
                ++stats->removedDead;
        }
    }
    return out;
}

} // namespace ucx
