/**
 * @file
 * Logic-cone extraction: the from-first-principles FanInLC.
 *
 * Paper Section 4.3: "Given a primary output (a signal that reaches
 * a pipeline latch), we identify the set of logic gates that
 * produces it starting from the preceding pipeline latch (its logic
 * cone), and count all the primary inputs to the cone. We then
 * repeat the process for all the primary outputs in the design,
 * accumulating the counts."
 */

#ifndef UCX_SYNTH_CONES_HH
#define UCX_SYNTH_CONES_HH

#include <cstddef>
#include <vector>

#include "synth/netlist.hh"

namespace ucx
{

/** One extracted logic cone. */
struct Cone
{
    GateId endpointDriver;       ///< Gate feeding the endpoint pin.
    size_t gateCount = 0;        ///< Combinational gates inside.
    size_t inputCount = 0;       ///< Distinct sequential inputs.
};

/** Summary of a cone analysis. */
struct ConeReport
{
    std::vector<Cone> cones;
    size_t fanInSum = 0;  ///< Sum of inputCount over all cones:
                          ///< the exact FanInLC.
    size_t maxInputs = 0; ///< Largest single cone fan-in.
};

/**
 * Extract the logic cone of every endpoint (DFF d-pin, memory pin,
 * primary output) and accumulate fan-in counts.
 *
 * @param netlist Gate netlist.
 * @return Per-cone statistics and the accumulated FanInLC.
 */
ConeReport extractCones(const Netlist &netlist);

} // namespace ucx

#endif // UCX_SYNTH_CONES_HH
