/**
 * @file
 * Synthesis reports: per-gate-kind histograms, cone-size
 * distributions, and LUT usage — the kind of summary Synplify Pro
 * prints and from which the paper estimated FanInLC (Section 4.3).
 */

#ifndef UCX_SYNTH_REPORT_HH
#define UCX_SYNTH_REPORT_HH

#include <map>
#include <string>
#include <vector>

#include "synth/cones.hh"
#include "synth/mapper.hh"
#include "synth/netlist.hh"

namespace ucx
{

/** Structured synthesis report for one netlist. */
struct SynthReport
{
    /** Gate count per kind name ("and", "dff", ...). */
    std::map<std::string, size_t> gateHistogram;

    /**
     * LUT count per used-input count (index 1..K), mirroring
     * Synplify's "LUTs using N inputs" table.
     */
    std::map<size_t, size_t> lutInputHistogram;

    /** Cone count per fan-in bucket (bucket = power of two). */
    std::map<size_t, size_t> coneFanInHistogram;

    size_t totalGates = 0;
    size_t totalLuts = 0;
    size_t totalCones = 0;
    size_t fanInSumLut = 0;   ///< Paper's FanInLC estimate.
    size_t fanInSumExact = 0; ///< Cone-traversal FanInLC.

    /** @return A human-readable multi-line rendering. */
    std::string render() const;
};

/**
 * Build the report for a netlist.
 *
 * @param netlist Gate netlist.
 * @return The structured report.
 */
SynthReport buildReport(const Netlist &netlist);

} // namespace ucx

#endif // UCX_SYNTH_REPORT_HH
