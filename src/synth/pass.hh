/**
 * @file
 * The synthesis pass manager.
 *
 * The flow that used to be a hard-wired call chain inside
 * synthesize() is an explicit pipeline: each stage is a named Pass
 * over a shared PipelineContext, and the stage list is declarative
 * data (defaultPassList()) instead of code. The default pipeline is
 *
 *     lower ──► techmap ──► lutmap ──► cones ──► timing ──► power
 *       │          │           │         │          │         │
 *       ▼          ▼           ▼         ▼          ▼         ▼
 *     Netlist  CellMapping LutMapping ConeReport TimingSummary PowerReport
 *                                   └───────────► metrics ─► SynthMetrics
 *
 * ("lower" covers word-level to gate-level expansion — bit blasting
 * plus the structural gate expansion of arithmetic.)
 *
 * Every pass produces exactly one immutable artifact, held in the
 * context behind shared_ptr<const T>. That representation is what
 * makes the pipeline memoizable: given an ArtifactCache and a base
 * CacheKey (content hash of the elaborated design + the PassConfig
 * fingerprint), the runner keys each pass's artifact individually,
 * loads cached artifacts instead of re-running the pass, and stores
 * fresh ones. Per-pass obs spans ("synth.pass.<name>") and counters
 * ("synth.pass.<name>.{runs,cache_hits}") expose where time goes.
 *
 * Each pass also declares which passes it reads (Pass::deps), so a
 * pipeline is a DAG, not just a list: submitPasses turns it into
 * TaskGraph nodes where techmap, lutmap, and cones run concurrently
 * after lower, and passes of *different* designs submitted to one
 * graph interleave freely across cores. runPasses remains the
 * sequential runner (and validates list order against the declared
 * deps); both produce identical artifacts.
 */

#ifndef UCX_SYNTH_PASS_HH
#define UCX_SYNTH_PASS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/artifact_cache.hh"
#include "cache/key.hh"
#include "exec/task_graph.hh"
#include "hdl/design.hh"
#include "synth/cones.hh"
#include "synth/elaborate.hh"
#include "synth/library.hh"
#include "synth/mapper.hh"
#include "synth/metrics.hh"
#include "synth/netlist.hh"
#include "synth/power.hh"
#include "synth/rtl.hh"
#include "synth/timing.hh"

namespace ucx
{

class LintReport;  // src/lint — artifact of the lint passes
struct DfaSummary; // src/dfa — artifact of the dfa pass

/** FPGA and ASIC timing, produced together by the timing pass. */
struct TimingSummary
{
    TimingReport fpga;
    TimingReport asic;
};

/** Declarative configuration of the synthesis pipeline. */
struct PassConfig
{
    CellLibrary library = CellLibrary::generic180();
    FpgaFabric fabric = FpgaFabric::stratix2Like();
    PowerModelConfig power;

    /**
     * Run the "constfold" pass between lowering and mapping (the
     * dfa-driven netlist optimisation; see synth/const_fold.hh).
     * Off by default so results stay comparable with published
     * baselines unless explicitly requested (UCX_CONST_FOLD=1).
     */
    bool constFold = false;

    /**
     * @return A hash of every numeric model parameter; part of the
     *         cache key, so artifacts produced under different
     *         technology assumptions never alias.
     */
    uint64_t fingerprint() const;
};

/** Shared state the passes read and extend. */
struct PipelineContext
{
    const RtlDesign *rtl = nullptr; ///< Input (set by the runner).
    PassConfig config;

    // One immutable artifact per pass; null until produced (or
    // loaded from the cache).
    std::shared_ptr<const Netlist> netlist;
    std::shared_ptr<const CellMapping> cells;
    std::shared_ptr<const LutMapping> luts;
    std::shared_ptr<const ConeReport> cones;
    std::shared_ptr<const TimingSummary> timing;
    std::shared_ptr<const PowerReport> power;
    std::shared_ptr<const SynthMetrics> metrics;

    // Lint-pass artifacts (providers live in src/lint; the slots
    // live here so the passes run through the same runner).
    std::shared_ptr<const LintReport> lint;    ///< "lint" pass.
    std::shared_ptr<const LintReport> lintNet; ///< "lintnet" pass.

    // Dataflow-analysis artifact (provider lives in src/dfa).
    std::shared_ptr<const DfaSummary> dfa;     ///< "dfa" pass.
};

/** One named stage of the synthesis pipeline. */
struct Pass
{
    std::string name; ///< Stage name ("lower", "techmap", ...).

    /**
     * Names of the passes this one reads artifacts from. The
     * declared dependencies are what turns a pass list into a task
     * graph: submitPasses connects each pass to exactly these
     * producers, so independent passes (techmap vs lutmap vs cones,
     * or any two passes of different designs) run concurrently.
     * runPasses validates that a sequential list respects them.
     */
    std::vector<std::string> deps;

    /** Dynamic type of the artifact (cache type checking). */
    const std::type_info *artifactType = nullptr;

    /** Produce the pass's artifact from the context. */
    std::function<void(PipelineContext &)> run;

    /** @return The artifact this pass produced (for caching). */
    std::function<std::shared_ptr<const void>(
        const PipelineContext &)>
        save;

    /** Install a cached artifact instead of running. */
    std::function<void(PipelineContext &,
                       std::shared_ptr<const void>)>
        load;
};

/** @return The default pipeline (see the file comment's diagram). */
const std::vector<Pass> &defaultPassList();

/**
 * The pipeline a configuration asks for: the default list, with
 * the "constfold" netlist optimisation spliced in after "lower"
 * when @p config.constFold is set (every lower-dependent pass then
 * also waits for the folded netlist).
 *
 * @param config Pass configuration.
 * @return The stage list, in dependency order.
 */
std::vector<Pass> passListFor(const PassConfig &config);

/** Cache/observability options of one pipeline run. */
struct PipelineRun
{
    /** Memo store; null runs everything uncached. */
    ArtifactCache *cache = nullptr;

    /**
     * Base key identifying the elaborated design content; the
     * runner derives "<base>|<pass name>" per pass. Required when
     * cache is set.
     */
    CacheKey base;
};

/**
 * Run a pass list over an elaborated design.
 *
 * @param rtl    Elaborated RTL (outlives the call).
 * @param passes Stages, in order.
 * @param config Technology configuration.
 * @param run    Cache binding.
 * @return The final context with every artifact populated.
 */
PipelineContext runPasses(const RtlDesign &rtl,
                          const std::vector<Pass> &passes,
                          const PassConfig &config = {},
                          const PipelineRun &run = {});

/**
 * Submit a pass list as TaskGraph nodes wired by each pass's
 * declared deps, so independent passes — of this pipeline and of
 * any other pipeline submitted to the same graph — interleave
 * across cores while dependent ones wait exactly for their
 * producers.
 *
 * The caller owns the context: @p ctx->config must be set before
 * the call, @p ctx->rtl must be populated by the @p after node (or
 * before submission when @p after is invalid), and the referenced
 * RTL must stay alive until the graph drained. Artifacts land in
 * @p ctx exactly as with runPasses; per-pass caching (including
 * single-flight dedup across concurrent pipelines of the same
 * design) behaves identically.
 *
 * @param graph  Graph to submit into.
 * @param after  Node producing ctx->rtl; every pass waits for it
 *               (pass an invalid handle when rtl is already set).
 * @param ctx    Shared pipeline context the pass nodes write.
 * @param passes Stages; every declared dep must be in the list.
 * @param run    Cache binding.
 * @return Handles of the pass nodes, in pass-list order.
 */
std::vector<TaskHandle> submitPasses(TaskGraph &graph,
                                     const TaskHandle &after,
                                     std::shared_ptr<PipelineContext> ctx,
                                     const std::vector<Pass> &passes,
                                     const PipelineRun &run = {});

/**
 * The full default pipeline, returning just the Table 3 metrics —
 * the memoizing equivalent of synthesize().
 *
 * @param rtl    Elaborated RTL.
 * @param config Technology configuration.
 * @param run    Cache binding.
 * @return All synthesis metrics.
 */
SynthMetrics synthesizeWithPasses(const RtlDesign &rtl,
                                  const PassConfig &config = {},
                                  const PipelineRun &run = {});

/**
 * Content-addressed key of one elaboration: source-text hash, top
 * module, parameter binding (verbatim), and elaboration options.
 *
 * @param design The design (keyed by its concatenated source text).
 * @param top    Top module.
 * @param opts   Elaboration options.
 * @return The key.
 */
CacheKey elabCacheKey(const Design &design, const std::string &top,
                      const ElabOptions &opts = {});

/**
 * Key prefix for synthesis artifacts derived from one elaboration
 * under one pass configuration.
 *
 * @param elab_key Output of elabCacheKey.
 * @param config   Pass configuration.
 * @return The base key for PipelineRun::base.
 */
CacheKey synthCacheKey(const CacheKey &elab_key,
                       const PassConfig &config);

/**
 * Memoized elaboration: look the result up by content key, or
 * elaborate and store it.
 *
 * @param design Parsed modules.
 * @param top    Top module name.
 * @param opts   Elaboration options.
 * @param cache  Memo store; null elaborates directly.
 * @return The (possibly shared) elaboration result.
 */
std::shared_ptr<const ElabResult> elaborateShared(
    const Design &design, const std::string &top,
    const ElabOptions &opts = {}, ArtifactCache *cache = nullptr);

} // namespace ucx

#endif // UCX_SYNTH_PASS_HH
