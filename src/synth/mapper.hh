/**
 * @file
 * Technology mapping.
 *
 * ASIC flow: gates bind 1:1 to standard cells (the lowering already
 * emits library-shaped primitives).
 *
 * FPGA flow: combinational gates are greedily clustered into K-input
 * LUTs. The paper estimated FanInLC from Synplify's LUT report by
 * summing all LUT input counts; lutFanInSum() reproduces exactly
 * that estimate, and the cone traversal in cones.hh provides the
 * from-first-principles definition for cross-checking.
 */

#ifndef UCX_SYNTH_MAPPER_HH
#define UCX_SYNTH_MAPPER_HH

#include <vector>

#include "synth/library.hh"
#include "synth/netlist.hh"

namespace ucx
{

/** One mapped LUT. */
struct Lut
{
    GateId root;                 ///< Gate whose output the LUT drives.
    std::vector<GateId> inputs;  ///< Leaf gates feeding the LUT.
    int depth = 0;               ///< LUT level from sources (1-based).
};

/** Result of LUT mapping. */
struct LutMapping
{
    std::vector<Lut> luts;
    int maxDepth = 0;     ///< Deepest LUT level.

    /**
     * @return Sum over LUTs of the number of inputs used — the
     *         paper's FanInLC estimate.
     */
    size_t fanInSum() const;
};

/**
 * Map the combinational logic of a netlist into K-input LUTs.
 *
 * Greedy bottom-up clustering in topological order: a gate is
 * absorbed into the cluster of its fanins while the union of leaves
 * fits in K inputs; gates with multiple fanouts, boundary drivers,
 * and overflowing unions become LUT roots.
 *
 * @param netlist Gate netlist.
 * @param fabric  FPGA fabric (K = fabric.lutInputs).
 * @return The LUT cover.
 */
LutMapping mapToLuts(const Netlist &netlist,
                     const FpgaFabric &fabric =
                         FpgaFabric::stratix2Like());

/** ASIC cell-count summary. */
struct CellMapping
{
    size_t cells = 0;        ///< Total mapped standard cells.
    size_t combCells = 0;    ///< Combinational cells.
    size_t seqCells = 0;     ///< Flip-flops.
    double areaLogicUm2 = 0; ///< Combinational area.
    double areaStorageUm2 = 0; ///< FF + RAM area.
    double leakageUw = 0;    ///< Total static leakage.
};

/**
 * Bind gates to standard cells and total the physical numbers.
 *
 * @param netlist Gate netlist.
 * @param library Cell library.
 * @return Counts and areas.
 */
CellMapping mapToCells(const Netlist &netlist,
                       const CellLibrary &library =
                           CellLibrary::generic180());

} // namespace ucx

#endif // UCX_SYNTH_MAPPER_HH
