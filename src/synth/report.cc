#include "synth/report.hh"

#include <sstream>

#include "util/table.hh"

namespace ucx
{

SynthReport
buildReport(const Netlist &netlist)
{
    SynthReport report;
    report.totalGates = netlist.gates.size();
    for (const Gate &gate : netlist.gates)
        ++report.gateHistogram[gateOpName(gate.op)];

    LutMapping luts = mapToLuts(netlist);
    report.totalLuts = luts.luts.size();
    report.fanInSumLut = luts.fanInSum();
    for (const Lut &lut : luts.luts)
        ++report.lutInputHistogram[lut.inputs.size()];

    ConeReport cones = extractCones(netlist);
    report.totalCones = cones.cones.size();
    report.fanInSumExact = cones.fanInSum;
    for (const Cone &cone : cones.cones) {
        size_t bucket = 1;
        while (bucket < cone.inputCount)
            bucket *= 2;
        ++report.coneFanInHistogram[bucket];
    }
    return report;
}

std::string
SynthReport::render() const
{
    std::ostringstream out;
    {
        Table t({"Gate kind", "Count"});
        for (const auto &[name, count] : gateHistogram)
            t.addRow({name, std::to_string(count)});
        t.addRule();
        t.addRow({"total", std::to_string(totalGates)});
        out << t.render() << "\n";
    }
    {
        Table t({"LUT inputs used", "LUTs"});
        for (const auto &[inputs, count] : lutInputHistogram)
            t.addRow({std::to_string(inputs),
                      std::to_string(count)});
        t.addRule();
        t.addRow({"total (" + std::to_string(totalLuts) + " LUTs)",
                  "FanInLC " + std::to_string(fanInSumLut)});
        out << t.render() << "\n";
    }
    {
        Table t({"Cone fan-in (<=)", "Cones"});
        for (const auto &[bucket, count] : coneFanInHistogram)
            t.addRow({std::to_string(bucket),
                      std::to_string(count)});
        t.addRule();
        t.addRow({"total (" + std::to_string(totalCones) +
                      " cones)",
                  "exact " + std::to_string(fanInSumExact)});
        out << t.render();
    }
    return out.str();
}

} // namespace ucx
