/**
 * @file
 * Activity-based power model for the mapped netlist: dynamic power
 * from per-cell switching energy at the achieved clock frequency,
 * static power from per-cell leakage.
 */

#ifndef UCX_SYNTH_POWER_HH
#define UCX_SYNTH_POWER_HH

#include "synth/library.hh"
#include "synth/netlist.hh"

namespace ucx
{

/** Power report for one netlist. */
struct PowerReport
{
    double dynamicMw = 0.0; ///< Dynamic (switching) power, mW.
    double staticUw = 0.0;  ///< Static (leakage) power, uW.
};

/** Configuration of the power model. */
struct PowerModelConfig
{
    double combActivity = 0.15; ///< Toggle probability per cycle.
    double seqActivity = 0.25;  ///< FF output toggle probability.
    double clockActivity = 1.0; ///< Clock pin always toggles.
    double clockPinEnergyPj = 0.035; ///< Per-FF clock-pin energy.
};

/**
 * Estimate power at a clock frequency.
 *
 * @param netlist Gate netlist.
 * @param freq_mhz Clock frequency in MHz.
 * @param library Cell library.
 * @param config  Activity assumptions.
 * @return Dynamic and static power.
 */
PowerReport estimatePower(const Netlist &netlist, double freq_mhz,
                          const CellLibrary &library =
                              CellLibrary::generic180(),
                          const PowerModelConfig &config = {});

} // namespace ucx

#endif // UCX_SYNTH_POWER_HH
