#include "synth/rtl.hh"

#include "util/error.hh"

namespace ucx
{

SigId
RtlDesign::addSignal(const std::string &name, int width, SigKind kind)
{
    require(width >= 1, "signal '" + name + "' needs width >= 1");
    require(byName_.find(name) == byName_.end(),
            "duplicate signal '" + name + "'");
    RtlSignal s;
    s.name = name;
    s.width = width;
    s.kind = kind;
    SigId id = static_cast<SigId>(signals.size());
    signals.push_back(std::move(s));
    byName_[name] = id;
    return id;
}

SigId
RtlDesign::findSignal(const std::string &name) const
{
    auto it = byName_.find(name);
    require(it != byName_.end(), "unknown signal '" + name + "'");
    return it->second;
}

bool
RtlDesign::hasSignal(const std::string &name) const
{
    return byName_.find(name) != byName_.end();
}

NodeId
RtlDesign::addNode(RtlNode node)
{
    ensure(node.width >= 1, "node width must be >= 1");
    for (NodeId arg : node.args)
        ensure(arg < nodes.size(), "node argument out of range");
    NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back(std::move(node));
    return id;
}

NodeId
RtlDesign::constNode(uint64_t value, int width)
{
    RtlNode n;
    n.op = RtlOp::Const;
    n.width = width;
    if (width < 64)
        value &= (1ull << width) - 1;
    n.constVal = value;
    return addNode(std::move(n));
}

NodeId
RtlDesign::sigNode(SigId sig)
{
    ensure(sig < signals.size(), "signal id out of range");
    RtlNode n;
    n.op = RtlOp::Sig;
    n.width = signals[sig].width;
    n.sig = sig;
    return addNode(std::move(n));
}

NodeId
RtlDesign::resize(NodeId node, int width)
{
    ensure(node < nodes.size(), "node id out of range");
    int have = nodes[node].width;
    if (have == width)
        return node;
    if (have > width) {
        RtlNode s;
        s.op = RtlOp::Slice;
        s.width = width;
        s.lo = 0;
        s.args = {node};
        return addNode(std::move(s));
    }
    // Zero-extend: {zeros, node}.
    NodeId zeros = constNode(0, width - have);
    RtlNode c;
    c.op = RtlOp::Concat;
    c.width = width;
    c.args = {zeros, node};
    return addNode(std::move(c));
}

size_t
RtlDesign::numRegs() const
{
    size_t n = 0;
    for (const auto &s : signals)
        if (s.kind == SigKind::Reg)
            ++n;
    return n;
}

void
RtlDesign::check() const
{
    for (const auto &s : signals) {
        if (s.kind == SigKind::Wire || s.kind == SigKind::Output ||
            s.kind == SigKind::Reg) {
            ensure(s.driver != invalidNode,
                   "signal '" + s.name + "' has no driver");
            ensure(s.driver < nodes.size(),
                   "signal '" + s.name + "' driver out of range");
            ensure(nodes[s.driver].width == s.width,
                   "signal '" + s.name + "' driver width mismatch");
        }
    }
    for (const auto &n : nodes) {
        for (NodeId arg : n.args)
            ensure(arg < nodes.size(), "node arg out of range");
        if (n.op == RtlOp::Sig)
            ensure(n.sig < signals.size(), "Sig node out of range");
        if (n.op == RtlOp::MemRead)
            ensure(n.mem < memories.size(),
                   "MemRead node out of range");
    }
}

} // namespace ucx
