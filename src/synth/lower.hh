/**
 * @file
 * Lowering: word-level RTL -> gate-level netlist (bit blasting).
 *
 * Arithmetic expands structurally (ripple-carry adders, array
 * multipliers, borrow comparators, barrel shifters), mirroring what
 * a synthesis tool's generic expansion produces before technology
 * mapping. Light constant folding and structural hashing keep the
 * netlist from carrying trivially redundant gates.
 */

#ifndef UCX_SYNTH_LOWER_HH
#define UCX_SYNTH_LOWER_HH

#include "synth/netlist.hh"
#include "synth/rtl.hh"

namespace ucx
{

/**
 * Bit-blast a flattened RTL design into a gate netlist.
 *
 * @param rtl Elaborated design (check()-clean).
 * @return The gate-level netlist; throws UcxError on combinational
 *         loops.
 */
Netlist lowerToGates(const RtlDesign &rtl);

} // namespace ucx

#endif // UCX_SYNTH_LOWER_HH
