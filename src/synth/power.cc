#include "synth/power.hh"

#include "util/error.hh"

namespace ucx
{

PowerReport
estimatePower(const Netlist &netlist, double freq_mhz,
              const CellLibrary &library,
              const PowerModelConfig &config)
{
    require(freq_mhz > 0.0, "power model needs freq > 0");
    PowerReport report;
    double energy_per_cycle_pj = 0.0;
    for (const Gate &gate : netlist.gates) {
        if (!CellLibrary::mapsToCell(gate.op))
            continue;
        const CellSpec &cell = library.cellFor(gate.op);
        report.staticUw += cell.leakUw;
        if (gate.op == GateOp::Dff) {
            energy_per_cycle_pj +=
                cell.energyPj * config.seqActivity +
                config.clockPinEnergyPj * config.clockActivity;
        } else {
            energy_per_cycle_pj += cell.energyPj * config.combActivity;
        }
    }
    report.staticUw += static_cast<double>(netlist.memoryBits) *
                       library.ramBitLeakUw;
    // pJ/cycle * Mcycles/s = uW; divide by 1000 for mW.
    report.dynamicMw = energy_per_cycle_pj * freq_mhz / 1000.0;
    return report;
}

} // namespace ucx
