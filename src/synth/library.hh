/**
 * @file
 * Synthetic 180 nm standard-cell library and 90 nm FPGA fabric
 * parameters.
 *
 * The paper synthesized with a 180 nm standard-cell library (Design
 * Compiler) and a 90 nm Altera Stratix-II FPGA (Synplify Pro). Both
 * are proprietary; these synthetic numbers are on the same order of
 * magnitude as published 180 nm cell datasheets, which is all the
 * metric *shape* study needs (absolute calibration cancels into the
 * regression weights w_k).
 */

#ifndef UCX_SYNTH_LIBRARY_HH
#define UCX_SYNTH_LIBRARY_HH

#include <string>

#include "synth/netlist.hh"

namespace ucx
{

/** Electrical/physical characteristics of one standard cell. */
struct CellSpec
{
    std::string name;     ///< Library cell name.
    double areaUm2 = 0.0; ///< Cell area in um^2.
    double delayNs = 0.0; ///< Intrinsic pin-to-pin delay in ns.
    double leakUw = 0.0;  ///< Static leakage in uW.
    double energyPj = 0.0;///< Switching energy per output toggle, pJ.
};

/** A technology library binding gate kinds to cells. */
class CellLibrary
{
  public:
    /** @return The built-in synthetic 180 nm library. */
    static const CellLibrary &generic180();

    /**
     * Cell used for a gate kind.
     *
     * @param op Combinational or sequential gate kind (not Input,
     *           Const, or memory pins).
     * @return Cell characteristics.
     */
    const CellSpec &cellFor(GateOp op) const;

    /** @return True when gates of this kind map to a cell. */
    static bool mapsToCell(GateOp op);

    /** Additional wire delay per fanout, ns. */
    double fanoutDelayNs = 0.02;

    /** Storage area per RAM bit, um^2 (dense SRAM macro). */
    double ramBitAreaUm2 = 1.5;

    /** Leakage per RAM bit, uW. */
    double ramBitLeakUw = 0.0002;

    /** DFF setup time, ns. */
    double dffSetupNs = 0.15;

    /** DFF clock-to-q, ns. */
    double dffClkQNs = 0.25;

  private:
    CellSpec inv_, and2_, or2_, xor2_, mux2_, dff_;
};

/** FPGA fabric parameters (synthetic Stratix-II-like, 90 nm). */
struct FpgaFabric
{
    int lutInputs = 8;          ///< Max LUT inputs (paper: 8).
    double lutDelayNs = 0.45;   ///< LUT propagation delay.
    double routeDelayNs = 0.85; ///< Average routing delay per level.
    double ffOverheadNs = 0.6;  ///< FF setup + clk-to-q.

    /** @return The default fabric. */
    static const FpgaFabric &stratix2Like();
};

} // namespace ucx

#endif // UCX_SYNTH_LIBRARY_HH
