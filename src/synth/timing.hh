/**
 * @file
 * Static timing analysis over the mapped netlist.
 *
 * Two models: the ASIC path delay from standard-cell delays plus a
 * per-fanout wire penalty, and the FPGA delay from LUT levels (the
 * paper's Freq metric is the FPGA frequency reported by Synplify).
 */

#ifndef UCX_SYNTH_TIMING_HH
#define UCX_SYNTH_TIMING_HH

#include "synth/library.hh"
#include "synth/mapper.hh"
#include "synth/netlist.hh"

namespace ucx
{

/** Timing report for one netlist. */
struct TimingReport
{
    double criticalPathNs = 0.0; ///< Longest boundary-to-boundary path.
    double freqMHz = 0.0;        ///< 1000 / criticalPathNs.
};

/**
 * ASIC STA: longest combinational path between sequential
 * boundaries, including FF clk-to-q and setup.
 *
 * @param netlist Gate netlist.
 * @param library Cell library.
 * @return Critical path and frequency.
 */
TimingReport staAsic(const Netlist &netlist,
                     const CellLibrary &library =
                         CellLibrary::generic180());

/**
 * FPGA timing from a LUT cover: depth * (LUT + routing delay) plus
 * FF overhead.
 *
 * @param mapping LUT mapping.
 * @param fabric  FPGA fabric.
 * @return Critical path and frequency (the Table 3 Freq metric).
 */
TimingReport staFpga(const LutMapping &mapping,
                     const FpgaFabric &fabric =
                         FpgaFabric::stratix2Like());

} // namespace ucx

#endif // UCX_SYNTH_TIMING_HH
