/**
 * @file
 * Reproduces paper Table 2: reported design effort (person-months)
 * per component, as collected from the designers.
 */

#include <iostream>

#include "bench_util.hh"
#include "data/paper_data.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("table2_effort");
    banner("Table 2",
           "Reported design effort in person-months (designer "
           "interviews).");

    Table t({"Project", "Component", "Person-Months",
             "Effort used in Table 4"});
    const auto &t2 = paperTable2Efforts();
    const auto &components =
        bench.session().accountedDataset().components();
    std::string last_project;
    for (size_t i = 0; i < t2.size(); ++i) {
        if (i > 0 && t2[i].project != last_project)
            t.addRule();
        last_project = t2[i].project;
        t.addRow({t2[i].project, t2[i].component,
                  fmtCompact(t2[i].personMonths, 2),
                  fmtCompact(components[i].effort, 2)});
    }
    std::cout << t.render() << "\n";
    std::cout
        << "Note: the paper's own Table 2 and Table 4 disagree on "
           "the two RAT rows\n(0.3/0.5 vs 0.6/1.0). Both are "
           "preserved verbatim; the regression uses the\nTable 4 "
           "column, whose sigma_eps values we reproduce.\n";
    return 0;
}
