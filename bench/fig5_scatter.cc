/**
 * @file
 * Reproduces paper Figure 5: scatter of DEE1 estimations versus
 * reported design effort, one point per component, split by team —
 * including the discussed Leon3-Pipeline outlier.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "core/estimator.hh"
#include "data/paper_data.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("fig5_scatter");
    banner("Figure 5",
           "Scatter: DEE1 estimate vs reported design effort "
           "(person-months).");

    EstimationSession &session = bench.session();
    const Dataset &data = session.accountedDataset();
    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());
    const auto &paper_est = paperDee1Estimates();

    Table t({"Component", "Reported", "DEE1 (ours)", "DEE1 (paper)",
             "ratio rep/ours"});
    const auto &components = data.components();
    std::string last_project;
    for (size_t i = 0; i < components.size(); ++i) {
        const Component &c = components[i];
        if (i > 0 && c.project != last_project)
            t.addRule();
        last_project = c.project;
        double est = dee1.predictMedian(
            c.metrics, dee1.productivity(c.project));
        t.addRow({c.fullName(), fmtCompact(c.effort, 2),
                  fmtFixed(est, 1), fmtFixed(paper_est[i], 1),
                  fmtFixed(c.effort / est, 2)});
    }
    std::cout << t.render() << "\n";

    // ASCII scatter, estimate (x) vs reported (y), log-free axes as
    // in the paper.
    const int width = 56;
    const int height = 20;
    const double xmax = 15.0;
    const double ymax = 26.0;
    std::vector<std::string> grid(height,
                                  std::string(width, ' '));
    auto glyph = [](const std::string &project) {
        if (project == "IVM")
            return 'I';
        if (project == "PUMA")
            return 'P';
        if (project == "Leon3")
            return 'L';
        return 'R';
    };
    // Diagonal eff == estimate reference.
    for (int gx = 0; gx < width; ++gx) {
        double x = xmax * gx / (width - 1);
        int gy = static_cast<int>((height - 1) * (1.0 - x / ymax));
        if (gy >= 0 && gy < height)
            grid[gy][gx] = '.';
    }
    for (const Component &c : components) {
        double est = dee1.predictMedian(
            c.metrics, dee1.productivity(c.project));
        int gx = static_cast<int>(
            std::min(est / xmax, 1.0) * (width - 1));
        int gy = static_cast<int>(
            (height - 1) *
            (1.0 - std::min(c.effort / ymax, 1.0)));
        grid[gy][gx] = glyph(c.project);
    }
    std::cout << "Design effort (person-months) vs DEE1 estimate "
                 "(L=Leon3 P=PUMA I=IVM R=RAT,\n'.' = perfect "
                 "estimate diagonal):\n\n";
    for (const auto &line : grid)
        std::cout << "  |" << line << "\n";
    std::cout << "  +" << std::string(width, '-') << "\n";
    std::cout << "   0" << std::string(width - 6, ' ')
              << fmtCompact(xmax, 0) << " DEE1\n\n";

    const Component &pipe = components[0];
    double pipe_est = dee1.predictMedian(
        pipe.metrics, dee1.productivity("Leon3"));
    std::cout << "Outlier (Section 5.1.1): " << pipe.fullName()
              << " reported " << fmtCompact(pipe.effort, 0)
              << " PM but estimated " << fmtFixed(pipe_est, 1)
              << " (paper: 12.8) - the full SPARC V8 pipeline is "
                 "more sophisticated\nthan any other component in "
                 "the dataset.\n";
    return 0;
}
