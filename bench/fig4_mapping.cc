/**
 * @file
 * Reproduces paper Figure 4: the sigma_eps -> 90% CI mapping over
 * [0.4, 0.7], annotated with where each refit estimator lands
 * (DEE1, LoC & FanInLC, Stmts, Nets — the usable ones fall in this
 * window).
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "stats/lognormal.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("fig4_mapping");
    banner("Figure 4",
           "Mapping between sigma_eps and the 90% CI, annotated "
           "with the fitted estimators.");

    EstimationSession &session = bench.session();

    struct Mark
    {
        std::string name;
        double sigma;
    };
    std::vector<Mark> marks;
    marks.push_back(
        {"DEE1", session.fit(EstimatorSpec::dee1()).sigmaEps()});
    for (Metric m : {Metric::Stmts, Metric::LoC, Metric::FanInLC,
                     Metric::Nets}) {
        marks.push_back(
            {metricName(m),
             session.fit(EstimatorSpec::single(m)).sigmaEps()});
    }
    std::sort(marks.begin(), marks.end(),
              [](const Mark &a, const Mark &b) {
                  return a.sigma < b.sigma;
              });

    Table t({"sigma_eps", "yl (90%)", "yh (90%)", "estimators here"});
    t.setAlign(3, Align::Left);
    for (double s = 0.40; s <= 0.701; s += 0.025) {
        auto [yl, yh] = errorFactors(s, 0.90);
        std::string here;
        for (const Mark &mark : marks) {
            if (mark.sigma >= s - 0.0125 && mark.sigma < s + 0.0125)
                here += (here.empty() ? "" : ", ") + mark.name;
        }
        t.addRow({fmtFixed(s, 3), fmtFixed(yl, 2), fmtFixed(yh, 2),
                  here});
    }
    std::cout << t.render() << "\n";

    Table m({"Estimator", "sigma_eps", "90% CI"});
    for (const Mark &mark : marks) {
        auto [yl, yh] = errorFactors(mark.sigma, 0.90);
        m.addRow({mark.name, fmtFixed(mark.sigma, 3),
                  "(" + fmtFixed(yl, 2) + ", " + fmtFixed(yh, 2) +
                      ")"});
    }
    std::cout << m.render();
    return 0;
}
