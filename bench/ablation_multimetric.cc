/**
 * @file
 * Extension experiment for the closing point of paper Section 5.1.1:
 * do estimators combining *three or more* metrics pay off? The paper
 * says the small correlation improvement is not worth it at 18 data
 * points; this harness quantifies that with AIC/BIC across 1-, 2-,
 * and 3-metric models built greedily around Stmts.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "core/search.hh"
#include "data/paper_data.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

namespace
{

std::string
comboName(const std::vector<Metric> &metrics)
{
    std::string name;
    for (Metric m : metrics)
        name += (name.empty() ? "" : "+") + metricName(m);
    return name;
}

} // namespace

int
main()
{
    BenchHarness bench("ablation_multimetric");
    banner("Extension: >2-metric estimators",
           "Does adding metrics beyond DEE1 pay? (Section 5.1.1, "
           "closing remark)");

    // The greedy search refits overlapping subsets; the session
    // memoizes each (dataset, spec) fit, so repeats are cache hits.
    EstimationSession &session = bench.session();

    // Greedy forward selection starting from the best single.
    std::vector<Metric> chosen;
    std::vector<Metric> remaining(allMetrics().begin(),
                                  allMetrics().end());
    Table t({"Model", "k", "sigma_eps", "AIC", "BIC"});
    t.setAlign(0, Align::Left);
    for (int round = 0; round < 4; ++round) {
        double best_sigma = 1e18;
        Metric best = remaining.front();
        FittedEstimator best_fit;
        for (Metric candidate : remaining) {
            EstimatorSpec spec;
            spec.metrics = chosen;
            spec.metrics.push_back(candidate);
            FittedEstimator fit = session.fit(spec);
            if (fit.sigmaEps() < best_sigma) {
                best_sigma = fit.sigmaEps();
                best = candidate;
                best_fit = fit;
            }
        }
        chosen.push_back(best);
        remaining.erase(
            std::find(remaining.begin(), remaining.end(), best));
        t.addRow({comboName(chosen),
                  std::to_string(chosen.size()),
                  fmtFixed(best_fit.sigmaEps(), 3),
                  fmtFixed(best_fit.aic(), 1),
                  fmtFixed(best_fit.bic(), 1)});
    }
    std::cout << t.render() << "\n";

    // The reference models from the paper.
    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());
    FittedEstimator stmts =
        session.fit(EstimatorSpec::single(Metric::Stmts));
    Table ref({"Reference", "sigma_eps", "AIC", "BIC"});
    ref.setAlign(0, Align::Left);
    ref.addRow({"Stmts (best single)",
                fmtFixed(stmts.sigmaEps(), 3),
                fmtFixed(stmts.aic(), 1), fmtFixed(stmts.bic(), 1)});
    ref.addRow({"DEE1 = Stmts+FanInLC (paper's pick)",
                fmtFixed(dee1.sigmaEps(), 3),
                fmtFixed(dee1.aic(), 1), fmtFixed(dee1.bic(), 1)});
    std::cout << ref.render() << "\n";

    std::cout
        << "Reading: sigma_eps keeps falling as metrics are added "
           "(it must: the models\nnest), but BIC bottoms out at 2-3 "
           "metrics — with 18 observations the extra\nweights stop "
           "paying for themselves, matching the paper's "
           "recommendation to\nstay at two metrics unless more "
           "data is available.\n";
    return 0;
}
