/**
 * @file
 * Reproduces paper Table 3: the metrics gathered for each component
 * and the tool used — here, the ucx_hdl / ucx_synth passes that
 * substitute for Synplify Pro and Design Compiler. As a live
 * demonstration, every metric is then measured on one shipped µHDL
 * component.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/measure.hh"
#include "designs/registry.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("table3_metrics");
    banner("Table 3",
           "Metrics gathered for each component, and the measuring "
           "pass.");

    Table t({"Metric", "Description", "Tool"});
    t.setAlign(1, Align::Left);
    t.setAlign(2, Align::Left);
    for (Metric m : allMetrics()) {
        t.addRow({metricName(m), metricDescription(m),
                  metricTool(m)});
    }
    std::cout << t.render() << "\n";

    std::cout << "Live measurement of the shipped components "
                 "(accounting procedure applied):\n\n";
    Table live({"Component", "Stmts", "LoC", "FanInLC", "Nets",
                "Freq", "AreaL", "PowerD", "PowerS", "AreaS",
                "Cells", "FFs"});
    for (const char *name :
         {"alu", "decoder", "regfile", "fetch", "cache_ctrl",
          "issue_queue", "rob", "rat_standard", "rat_sliding"}) {
        ComponentMeasurement m =
            bench.session().measureShipped(name);
        std::vector<std::string> row = {name};
        for (Metric metric : allMetrics()) {
            row.push_back(fmtCompact(
                m.metrics[static_cast<size_t>(metric)], 1));
        }
        live.addRow(row);
    }
    std::cout << live.render();
    return 0;
}
