/**
 * @file
 * Reproduces paper Figure 3: the multiplicative factors (yl, yh) of
 * the 68% and 90% confidence intervals as a function of sigma_eps
 * in [0, 0.7], including the worked example at sigma = 0.45.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/lognormal.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("fig3_confidence");
    banner("Figure 3",
           "68% and 90% confidence-interval factors vs sigma_eps.");

    Table t({"sigma_eps", "yl (68%)", "yh (68%)", "yl (90%)",
             "yh (90%)"});
    for (double s = 0.0; s <= 0.701; s += 0.05) {
        auto [l68, h68] = errorFactors(s, 0.68);
        auto [l90, h90] = errorFactors(s, 0.90);
        t.addRow({fmtFixed(s, 2), fmtFixed(l68, 3),
                  fmtFixed(h68, 3), fmtFixed(l90, 3),
                  fmtFixed(h90, 3)});
    }
    std::cout << t.render() << "\n";

    auto [yl, yh] = errorFactors(0.45, 0.90);
    std::cout << "Worked example (paper): sigma_eps = 0.45 -> "
              << "yl = " << fmtFixed(yl, 2)
              << ", yh = " << fmtFixed(yh, 2)
              << " (paper: ~0.5 and ~2.1).\n";
    std::cout << "The 90% CI for an estimate eff is "
                 "(yl * eff, yh * eff).\n";
    return 0;
}
