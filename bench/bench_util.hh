/**
 * @file
 * Shared harness for the table/figure reproduction benches in
 * bench/: banner formatting, the machine-readable run report, and
 * the BenchHarness bundling both with an EstimationSession.
 *
 * Every bench holds a BenchReport for the duration of main(). The
 * report turns observability collection on (stdout stays untouched —
 * obs data flows only into the report file), wraps the run in a root
 * span, and on destruction writes BENCH_<name>.json into the current
 * directory (or $UCX_BENCH_DIR when set): wall time plus the full
 * metrics/span snapshot (fit
 * counts, optimizer iteration counts, per-stage synthesis timings,
 * cache hit/miss counts, ...). This file is what populates the perf
 * trajectory; the human-readable tables on stdout are unchanged.
 */

#ifndef UCX_BENCH_BENCH_UTIL_HH
#define UCX_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "engine/session.hh"
#include "obs/export.hh"
#include "obs/memory.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/tracelog.hh"
#include "util/logging.hh"

namespace ucx
{

/** Separator line used above and below every bench banner. */
inline constexpr const char *kBannerRule =
    "================================================================";

/** Print a bench banner naming the paper artifact reproduced. */
inline void
banner(const std::string &what, const std::string &detail)
{
    std::cout << kBannerRule << "\n";
    std::cout << "uComplexity reproduction: " << what << "\n";
    std::cout << detail << "\n";
    std::cout << kBannerRule << "\n\n";
    // Flush so banners interleave correctly with stderr diagnostics.
    std::cout << std::flush;
}

/**
 * RAII bench run report. Construct first thing in main(); the
 * destructor writes BENCH_<name>.json next to the working directory
 * the bench was launched from.
 */
class BenchReport
{
  public:
    /**
     * Start the report.
     *
     * @param name Bench binary name; names the root span and the
     *             output file.
     */
    explicit BenchReport(std::string name) : name_(std::move(name))
    {
        // Collection is forced on so the report is populated even
        // without UCX_OBS in the environment; nothing is printed, so
        // stdout remains byte-identical either way. An explicit
        // UCX_OBS=0 still wins — that is how to time the disabled
        // instrumentation path.
        const char *env = std::getenv("UCX_OBS");
        if (!(env && std::string(env) == "0")) {
            obs::setEnabled(true);
            obs::resetAll();
            root_.emplace("bench:" + name_);
        }
        if (obs::traceEnabled())
            obs::setTraceThreadName("main");
        start_ = std::chrono::steady_clock::now();
    }

    ~BenchReport()
    {
        double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start_)
                             .count();
        root_.reset(); // close the root span before snapshotting
        if (obs::enabled())
            obs::sampleMemoryGauges();
        std::string path = "BENCH_" + name_ + ".json";
        // UCX_BENCH_DIR redirects report files (CI archives them
        // from one place instead of scraping working directories).
        const char *dir = std::getenv("UCX_BENCH_DIR");
        if (dir && *dir != '\0')
            path = std::string(dir) + "/" + path;
        std::ofstream out(path);
        if (!out) {
            warn("could not write " + path);
            return;
        }
        out << obs::benchReportJson(name_, wall_ms);
        // The trace file (if tracing) is flushed at process exit as
        // well, but writing it here keeps it complete even if exit
        // handlers are skipped.
        if (obs::traceEnabled())
            obs::writeTraceFile();
    }

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

  private:
    std::string name_;
    std::chrono::steady_clock::time_point start_;
    std::optional<obs::ScopedSpan> root_;
};

/**
 * The one-liner every bench main() starts with: the run report plus
 * a lazily constructed EstimationSession honoring UCX_THREADS,
 * UCX_CACHE, and UCX_CACHE_CAPACITY. Replaces the per-bench
 * BenchReport + ExecContext::fromEnv() boilerplate; benches that
 * never touch the session (pure table prints) never pay for the
 * thread pool.
 */
class BenchHarness
{
  public:
    /** @param name Bench binary name (report file / root span). */
    explicit BenchHarness(std::string name)
        : report_(std::move(name))
    {
    }

    /** @return The session, constructed from env on first use. */
    EstimationSession &
    session()
    {
        if (!session_)
            session_.emplace();
        return *session_;
    }

    /** @return The session's execution context. */
    const ExecContext &exec() { return session().exec(); }

    ~BenchHarness()
    {
        // Export the session's cache effectiveness into the report
        // (the report itself is written by report_'s destructor,
        // which runs after this body).
        if (session_) {
            ArtifactCache::Stats s = session_->cache().stats();
            obs::gauge("bench.cache.hit_rate").set(s.hitRate());
            obs::gauge("bench.cache.entries")
                .set(static_cast<double>(s.entries));
            obs::gauge("bench.cache.bytes")
                .set(static_cast<double>(s.approxBytes));
        }
    }

  private:
    BenchReport report_;
    std::optional<EstimationSession> session_;
};

} // namespace ucx

#endif // UCX_BENCH_BENCH_UTIL_HH
