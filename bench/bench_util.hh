/**
 * @file
 * Shared formatting helpers for the table/figure reproduction
 * harnesses in bench/.
 */

#ifndef UCX_BENCH_BENCH_UTIL_HH
#define UCX_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

namespace ucx
{

/** Print a bench banner naming the paper artifact reproduced. */
inline void
banner(const std::string &what, const std::string &detail)
{
    std::cout << "==============================================="
                 "=================\n";
    std::cout << "uComplexity reproduction: " << what << "\n";
    std::cout << detail << "\n";
    std::cout << "==============================================="
                 "=================\n\n";
}

} // namespace ucx

#endif // UCX_BENCH_BENCH_UTIL_HH
