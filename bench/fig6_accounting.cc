/**
 * @file
 * Reproduces paper Figure 6: accuracy of every estimator with vs
 * without the µComplexity accounting procedure (Section 5.3) — on
 * the paper's data via the documented no-accounting reconstruction,
 * and mechanically on the shipped µHDL designs via the real
 * accounting pass.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/estimator.hh"
#include "core/measure.hh"
#include "data/paper_data.hh"
#include "designs/registry.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("fig6_accounting");
    banner("Figure 6",
           "sigma_eps without vs with the accounting procedure "
           "(Section 2.2).");

    // fit() calibrates on the accounted dataset, ablate() on the
    // Section 5.3 no-accounting reconstruction.
    EstimationSession &session = bench.session();

    Table t({"Estimator", "with procedure", "without procedure",
             "paper (without)"});
    {
        double w = session.fit(EstimatorSpec::dee1()).sigmaEps();
        double wo =
            session.ablate(EstimatorSpec::dee1()).sigmaEps();
        t.addRow({"DEE1", fmtFixed(w, 2), fmtFixed(wo, 2),
                  "~unchanged"});
        t.addRule();
    }
    for (Metric m : allMetrics()) {
        double w = session.fit(EstimatorSpec::single(m)).sigmaEps();
        double wo =
            session.ablate(EstimatorSpec::single(m)).sigmaEps();
        std::string paper = "-";
        if (m == Metric::FanInLC)
            paper = "1.18";
        else if (m == Metric::Nets)
            paper = "1.07";
        else if (m == Metric::Stmts || m == Metric::LoC)
            paper = "unchanged";
        t.addRow({metricName(m), fmtFixed(w, 2), fmtFixed(wo, 2),
                  paper});
    }
    std::cout << t.render() << "\n";
    std::cout
        << "The paper tabulates only the FanInLC/Nets values; the "
           "without-procedure\nmetric values are reconstructed from "
           "per-component instance-multiplicity\nfactors "
           "(src/data/paper_data.cc), concentrated in IVM as the "
           "paper describes.\nSource metrics (Stmts, LoC) are "
           "untouched by the procedure; DEE1 moves\nlittle because "
           "the regression shifts weight onto Stmts.\n\n";

    // Mechanical demonstration on the shipped µHDL components.
    std::cout << "Mechanical ablation on shipped uHDL components "
                 "(real accounting pass):\n\n";
    Table mech({"Component", "Metric", "with", "without",
                "inflation"});
    for (const char *name :
         {"exec_cluster", "mmu_lite", "issue_queue", "memctrl"}) {
        auto w = session.measureShipped(
            name, AccountingMode::WithProcedure);
        auto wo = session.measureShipped(
            name, AccountingMode::WithoutProcedure);
        for (Metric m : {Metric::FanInLC, Metric::Cells}) {
            double a = w.metrics[static_cast<size_t>(m)];
            double b = wo.metrics[static_cast<size_t>(m)];
            mech.addRow({name, metricName(m), fmtCompact(a, 0),
                         fmtCompact(b, 0),
                         fmtFixed(b / std::max(a, 1.0), 1) + "x"});
        }
    }
    std::cout << mech.render();
    return 0;
}
