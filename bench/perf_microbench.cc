/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths:
 * likelihood evaluation, model fitting (analytic vs Laplace vs
 * AGHQ — the key design-choice ablation), parsing, elaboration, and
 * the synthesis pipeline.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "core/estimator.hh"
#include "data/paper_data.hh"
#include "designs/registry.hh"
#include "hdl/parser.hh"
#include "hdl/source_metrics.hh"
#include "nlme/generic.hh"
#include "nlme/mixed_model.hh"
#include "nlme/pooled.hh"
#include "synth/elaborate.hh"
#include "synth/metrics.hh"

namespace
{

using namespace ucx;

NlmeData
paperNlme()
{
    return paperDataset().toNlmeData(
        {Metric::Stmts, Metric::FanInLC});
}

void
BM_LogLikelihoodAnalytic(benchmark::State &state)
{
    MixedModel model(paperNlme());
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodAnalytic);

void
BM_LogLikelihoodLaplace(benchmark::State &state)
{
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Laplace;
    GenericNlme model(paperNlme(), logLinearMean(), cfg);
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodLaplace);

void
BM_LogLikelihoodAghq(benchmark::State &state)
{
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Aghq;
    cfg.quadraturePoints = static_cast<size_t>(state.range(0));
    GenericNlme model(paperNlme(), logLinearMean(), cfg);
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodAghq)->Arg(5)->Arg(15)->Arg(31);

void
BM_FitDee1Mixed(benchmark::State &state)
{
    const Dataset &data = paperDataset();
    for (auto _ : state)
        benchmark::DoNotOptimize(fitDee1(data));
}
BENCHMARK(BM_FitDee1Mixed)->Unit(benchmark::kMillisecond);

void
BM_FitDee1Pooled(benchmark::State &state)
{
    const Dataset &data = paperDataset();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fitDee1(data, FitMode::Pooled));
    }
}
BENCHMARK(BM_FitDee1Pooled)->Unit(benchmark::kMillisecond);

void
BM_ParsePipeline(benchmark::State &state)
{
    const ShippedDesign &sd = shippedDesign("pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(parseSource(sd.source));
}
BENCHMARK(BM_ParsePipeline)->Unit(benchmark::kMicrosecond);

void
BM_SourceMetricsPipeline(benchmark::State &state)
{
    const ShippedDesign &sd = shippedDesign("pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(measureSource(sd.source));
}
BENCHMARK(BM_SourceMetricsPipeline)->Unit(benchmark::kMicrosecond);

void
BM_ElaboratePipeline(benchmark::State &state)
{
    Design design = shippedDesign("pipeline").load();
    for (auto _ : state)
        benchmark::DoNotOptimize(elaborate(design, "pipeline"));
}
BENCHMARK(BM_ElaboratePipeline)->Unit(benchmark::kMillisecond);

void
BM_SynthesizePipeline(benchmark::State &state)
{
    Design design = shippedDesign("pipeline").load();
    ElabResult r = elaborate(design, "pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(synthesize(r.rtl));
}
BENCHMARK(BM_SynthesizePipeline)->Unit(benchmark::kMillisecond);

void
BM_SynthesizeIssueQueue(benchmark::State &state)
{
    Design design = shippedDesign("issue_queue").load();
    ElabResult r = elaborate(design, "issue_queue");
    for (auto _ : state)
        benchmark::DoNotOptimize(synthesize(r.rtl));
}
BENCHMARK(BM_SynthesizeIssueQueue)->Unit(benchmark::kMillisecond);

} // namespace

// Expanded BENCHMARK_MAIN() so the whole run sits inside a
// BenchReport and BENCH_perf_microbench.json captures the
// instrumentation counters alongside google-benchmark's own output.
int
main(int argc, char **argv)
{
    ucx::BenchReport report("perf_microbench");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
