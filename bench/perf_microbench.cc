/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths:
 * likelihood evaluation, model fitting (analytic vs Laplace vs
 * AGHQ — the key design-choice ablation), parsing, elaboration, and
 * the synthesis pipeline.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "io/artifact_serde.hh"
#include "core/estimator.hh"
#include "data/paper_data.hh"
#include "designs/registry.hh"
#include "exec/context.hh"
#include "hdl/parser.hh"
#include "hdl/source_metrics.hh"
#include "nlme/bootstrap.hh"
#include "nlme/generic.hh"
#include "nlme/kernels.hh"
#include "nlme/mixed_model.hh"
#include "nlme/pooled.hh"
#include "opt/bfgs.hh"
#include "opt/workspace.hh"
#include "synth/elaborate.hh"
#include "synth/metrics.hh"
#include "synth/pass.hh"
#include "util/alloc_hook.hh"

namespace
{

using namespace ucx;

NlmeData
paperNlme()
{
    return paperDataset().toNlmeData(
        {Metric::Stmts, Metric::FanInLC});
}

void
BM_LogLikelihoodAnalytic(benchmark::State &state)
{
    MixedModel model(paperNlme());
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodAnalytic);

void
BM_LogLikelihoodLaplace(benchmark::State &state)
{
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Laplace;
    GenericNlme model(paperNlme(), logLinearMean(), cfg);
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodLaplace);

void
BM_LogLikelihoodAghq(benchmark::State &state)
{
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Aghq;
    cfg.quadraturePoints = static_cast<size_t>(state.range(0));
    GenericNlme model(paperNlme(), logLinearMean(), cfg);
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodAghq)->Arg(5)->Arg(15)->Arg(31);

void
BM_FitDee1Mixed(benchmark::State &state)
{
    const Dataset &data = paperDataset();
    for (auto _ : state)
        benchmark::DoNotOptimize(fitDee1(data));
}
BENCHMARK(BM_FitDee1Mixed)->Unit(benchmark::kMillisecond);

void
BM_FitDee1Pooled(benchmark::State &state)
{
    const Dataset &data = paperDataset();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fitDee1(data, FitMode::Pooled));
    }
}
BENCHMARK(BM_FitDee1Pooled)->Unit(benchmark::kMillisecond);

void
BM_ParsePipeline(benchmark::State &state)
{
    const ShippedDesign &sd = shippedDesign("pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(parseSource(sd.source));
}
BENCHMARK(BM_ParsePipeline)->Unit(benchmark::kMicrosecond);

void
BM_SourceMetricsPipeline(benchmark::State &state)
{
    const ShippedDesign &sd = shippedDesign("pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(measureSource(sd.source));
}
BENCHMARK(BM_SourceMetricsPipeline)->Unit(benchmark::kMicrosecond);

void
BM_ElaboratePipeline(benchmark::State &state)
{
    Design design = shippedDesign("pipeline").load();
    for (auto _ : state)
        benchmark::DoNotOptimize(elaborate(design, "pipeline"));
}
BENCHMARK(BM_ElaboratePipeline)->Unit(benchmark::kMillisecond);

void
BM_SynthesizePipeline(benchmark::State &state)
{
    Design design = shippedDesign("pipeline").load();
    ElabResult r = elaborate(design, "pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(synthesize(r.rtl));
}
BENCHMARK(BM_SynthesizePipeline)->Unit(benchmark::kMillisecond);

void
BM_SynthesizeIssueQueue(benchmark::State &state)
{
    Design design = shippedDesign("issue_queue").load();
    ElabResult r = elaborate(design, "issue_queue");
    for (auto _ : state)
        benchmark::DoNotOptimize(synthesize(r.rtl));
}
BENCHMARK(BM_SynthesizeIssueQueue)->Unit(benchmark::kMillisecond);

void
BM_BuildAllShipped(benchmark::State &state)
{
    ExecContext ctx =
        ExecContext::withThreads(static_cast<size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(buildAll(ctx));
}
BENCHMARK(BM_BuildAllShipped)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * Headline parallel workload: a 200-replicate parametric bootstrap
 * of the DEE1 mixed-effects fit, timed serially and through a
 * >= 4-thread pool. The wall times, the speedup, and whether the two
 * runs produced identical replicate fits land in
 * BENCH_perf_microbench.json as gauges.
 */
void
bootstrapSpeedup()
{
    NlmeData nd = paperNlme();
    MixedModel model(nd);
    MixedFit fit = model.fit();

    BootstrapConfig bc;
    bc.replicates = 200;
    bc.starts = 1;

    auto run = [&](const ExecContext &ctx, double &wall_ms) {
        auto t0 = std::chrono::steady_clock::now();
        BootstrapResult r = parametricBootstrap(nd, fit, bc, ctx);
        wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        return r;
    };

    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    BootstrapResult serial = run(ExecContext::serial(), serial_ms);
    size_t threads = std::max<size_t>(
        4, std::thread::hardware_concurrency());
    BootstrapResult parallel =
        run(ExecContext::withThreads(threads), parallel_ms);

    bool identical = serial.fits.size() == parallel.fits.size();
    for (size_t i = 0; identical && i < serial.fits.size(); ++i) {
        identical = serial.fits[i].sigmaEps ==
                        parallel.fits[i].sigmaEps &&
                    serial.fits[i].sigmaRho ==
                        parallel.fits[i].sigmaRho &&
                    serial.fits[i].weights == parallel.fits[i].weights;
    }

    obs::gauge("bench.bootstrap200.serial_ms").set(serial_ms);
    obs::gauge("bench.bootstrap200.parallel_ms").set(parallel_ms);
    obs::gauge("bench.bootstrap200.threads")
        .set(static_cast<double>(threads));
    obs::gauge("bench.bootstrap200.speedup")
        .set(parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    obs::gauge("bench.bootstrap200.identical")
        .set(identical ? 1.0 : 0.0);

    std::cout << "bootstrap(200 replicates): serial " << serial_ms
              << " ms, " << threads << " threads " << parallel_ms
              << " ms, speedup "
              << (parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0)
              << "x, results "
              << (identical ? "identical" : "DIFFERENT") << "\n";
}

/**
 * Fit-kernel throughput: the likelihood/gradient hot path that every
 * fit, bootstrap replicate, and profile point sits on.
 *
 * Four comparisons land in BENCH_perf_microbench.json as
 * bench.fit.* gauges:
 *  - evals_per_sec vs legacy_evals_per_sec: the SoA workspace kernel
 *    against a faithful reimplementation of the pre-kernel
 *    evaluation path (fresh vector-of-vectors residuals per call),
 *    with kernel_speedup as the ratio;
 *  - serial_ms vs parallel_ms: a fit-heavy parametric-bootstrap
 *    workload run serially and through a pool (thread-local
 *    workspaces mean the workers never contend);
 *  - grad_speedup: wall time of the finite-difference BFGS fit over
 *    the analytic-gradient fit;
 *  - steady_allocs: heap allocations (counting operator new) across
 *    a warmed-up batch of logLikelihood calls — the zero-allocation
 *    steady-state claim, asserted to stay 0 by bench-smoke.
 *
 * Runs even under UCX_BENCH_SMOKE (with smaller repetition counts)
 * so the smoke gate can assert the gauges' presence.
 */
void
fitSpeedup(bool smoke)
{
    NlmeData nd = paperNlme();
    MixedModel model(nd);
    const std::vector<double> w = {0.002, 0.0003};
    const double se = 0.45;
    const double sr = 0.3;

    // The pre-kernel evaluation path, preserved here as the
    // yardstick: a vector-of-vectors residual set allocated per
    // call, row-major covariate access through the bounds-checked
    // Matrix accessor, and precondition messages materialized as
    // std::string temporaries (the overload every call bound to
    // before the const char* fast path existed).
    auto legacyLogLik = [&]() {
        require(w.size() == nd.numCovariates(),
                std::string("weight count does not match covariates"));
        require(se > 0.0, std::string("sigma_eps must be > 0"));
        require(sr >= 0.0, std::string("sigma_rho must be >= 0"));
        std::vector<std::vector<double>> res;
        res.reserve(nd.groups.size());
        for (const auto &g : nd.groups) {
            std::vector<double> r(g.y.size());
            for (size_t j = 0; j < g.y.size(); ++j) {
                double lin = 0.0;
                for (size_t k = 0; k < w.size(); ++k)
                    lin += w[k] * g.x(j, k);
                r[j] = g.y[j] - std::log(lin);
            }
            res.push_back(std::move(r));
        }
        double var_e = se * se;
        double var_r = sr * sr;
        double ll = 0.0;
        for (const auto &r : res) {
            double n = static_cast<double>(r.size());
            double tau = var_e + n * var_r;
            double ss = 0.0;
            double s = 0.0;
            for (double v : r) {
                ss += v * v;
                s += v;
            }
            double log_det =
                (n - 1.0) * std::log(var_e) + std::log(tau);
            double quad = (ss - (var_r / tau) * s * s) / var_e;
            ll += -0.5 *
                  (n * std::log(2.0 * M_PI) + log_det + quad);
        }
        return ll;
    };

    const size_t evals = smoke ? 2000 : 50000;

    // Warm the thread workspace, then count heap traffic across a
    // steady-state batch through the hooked allocator.
    for (int i = 0; i < 8; ++i)
        benchmark::DoNotOptimize(model.logLikelihood(w, se, sr));
    AllocCounts before = allocCountsThread();
    for (int i = 0; i < 64; ++i)
        benchmark::DoNotOptimize(model.logLikelihood(w, se, sr));
    AllocCounts after = allocCountsThread();
    double steady_allocs =
        static_cast<double>(after.allocs - before.allocs);

    auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < evals; ++i)
        benchmark::DoNotOptimize(model.logLikelihood(w, se, sr));
    double kernel_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < evals; ++i)
        benchmark::DoNotOptimize(legacyLogLik());
    double legacy_s = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    double eps = kernel_s > 0.0
                     ? static_cast<double>(evals) / kernel_s
                     : 0.0;
    double legacy_eps = legacy_s > 0.0
                            ? static_cast<double>(evals) / legacy_s
                            : 0.0;

    // Analytic-gradient BFGS against the finite-difference path on
    // the polish leg the gradient replaces: identical objective
    // (through the SoA kernels), identical start near the optimum,
    // central-difference probing (2p evals per gradient) vs one
    // fused likelihood+gradient kernel call.
    MixedFit fit = model.fit();
    const size_t ncov = nd.numCovariates();
    nlme::SoaData soa = nlme::SoaData::fromData(nd);
    Objective nll = [&](const std::vector<double> &u) {
        FitWorkspace &ws = threadFitWorkspace();
        ws.ensure(soa.nobs, ncov + 2);
        double *theta = ws.theta.data();
        for (size_t i = 0; i < ncov + 2; ++i)
            theta[i] = std::exp(u[i]);
        if (nlme::residualKernel(soa, theta, ws) !=
            nlme::KernelStatus::Ok)
            return std::numeric_limits<double>::infinity();
        return -nlme::logLikKernel(soa, ws.resid.data(),
                                   theta[ncov] * theta[ncov],
                                   theta[ncov + 1] * theta[ncov + 1]);
    };
    Gradient agrad = [&](const std::vector<double> &u,
                         std::vector<double> &out) {
        FitWorkspace &ws = threadFitWorkspace();
        ws.ensure(soa.nobs, ncov + 2);
        double *theta = ws.theta.data();
        for (size_t i = 0; i < ncov + 2; ++i)
            theta[i] = std::exp(u[i]);
        if (nlme::residualKernel(soa, theta, ws) !=
            nlme::KernelStatus::Ok) {
            for (size_t i = 0; i < ncov + 2; ++i)
                out[i] = 0.0;
            return;
        }
        double *g = ws.grad.data();
        nlme::logLikGradKernel(soa, theta[ncov], theta[ncov + 1], ws,
                               g);
        for (size_t i = 0; i < ncov + 2; ++i)
            out[i] = -g[i] * theta[i];
    };
    std::vector<double> u0(ncov + 2);
    for (size_t k = 0; k < ncov; ++k)
        u0[k] = std::log(fit.weights[k]) + 0.4;
    u0[ncov] = std::log(fit.sigmaEps) + 0.4;
    u0[ncov + 1] = std::log(fit.sigmaRho) + 0.4;

    const int polish_reps = smoke ? 50 : 500;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < polish_reps; ++i)
        benchmark::DoNotOptimize(bfgs(nll, u0));
    double fd_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < polish_reps; ++i)
        benchmark::DoNotOptimize(bfgs(nll, agrad, u0));
    double an_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    double grad_speedup = an_ms > 0.0 ? fd_ms / an_ms : 0.0;

    // Fit-heavy bootstrap workload, serial vs pooled.
    BootstrapConfig bc;
    bc.replicates = smoke ? 10 : 200;
    bc.starts = 1;
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        parametricBootstrap(nd, fit, bc, ExecContext::serial()));
    double serial_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    size_t threads = std::max<size_t>(
        4, std::thread::hardware_concurrency());
    t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(parametricBootstrap(
        nd, fit, bc, ExecContext::withThreads(threads)));
    double parallel_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

    obs::gauge("bench.fit.evals_per_sec").set(eps);
    obs::gauge("bench.fit.legacy_evals_per_sec").set(legacy_eps);
    obs::gauge("bench.fit.kernel_speedup")
        .set(legacy_eps > 0.0 && eps > 0.0 ? eps / legacy_eps : 0.0);
    obs::gauge("bench.fit.serial_ms").set(serial_ms);
    obs::gauge("bench.fit.parallel_ms").set(parallel_ms);
    obs::gauge("bench.fit.grad_speedup").set(grad_speedup);
    obs::gauge("bench.fit.steady_allocs").set(steady_allocs);
    publishAllocCounters();

    std::cout << "fit kernels: " << eps << " evals/s (legacy "
              << legacy_eps << "/s, "
              << (legacy_eps > 0.0 ? eps / legacy_eps : 0.0)
              << "x), grad speedup " << grad_speedup
              << "x, bootstrap(" << bc.replicates << ") serial "
              << serial_ms << " ms / pooled " << parallel_ms
              << " ms, steady-state allocs " << steady_allocs
              << "\n";
}

/**
 * Artifact-cache effectiveness: build every shipped design twice
 * through one session — cold (every elaboration and synthesis pass
 * runs) then warm (every artifact is a cache hit) — and record the
 * wall times, the speedup, and the session hit rate as gauges in
 * BENCH_perf_microbench.json. With UCX_CACHE=0 both runs are cold
 * and the speedup hovers around 1.
 */
void
cacheSpeedup()
{
    EstimationSession session(SessionConfig::fromEnv(),
                              ExecContext::serial());

    auto run = [&] {
        auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(session.buildShipped());
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    double cold_ms = run();
    double warm_ms = run();
    double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    ArtifactCache::Stats stats = session.cache().stats();

    obs::gauge("bench.cache.cold_ms").set(cold_ms);
    obs::gauge("bench.cache.warm_ms").set(warm_ms);
    obs::gauge("bench.cache.speedup").set(speedup);
    obs::gauge("bench.cache.hit_rate").set(stats.hitRate());

    std::cout << "buildShipped: cold " << cold_ms << " ms, warm "
              << warm_ms << " ms, speedup " << speedup
              << "x, hit rate " << stats.hitRate() << " ("
              << (session.cache().enabled() ? "cache on"
                                            : "cache off")
              << ")\n";
}

/**
 * Scheduler shape comparison: build several shipped designs cold
 * (uncached) through the old flat fork-join shape — one task per
 * design, each running its whole elaborate-then-pass pipeline
 * sequentially — and through the per-pass dependency graph
 * (buildDesigns), where independent passes of different designs
 * interleave across the pool. Both run on the same >= 4-thread
 * pool; the wall times and speedup land in
 * BENCH_perf_microbench.json as bench.graph.* gauges. Runs even
 * under UCX_BENCH_SMOKE (on a design subset) so bench-smoke can
 * gate on the gauges' presence.
 */
void
graphSpeedup(bool smoke)
{
    std::vector<std::string> names;
    for (const ShippedDesign &sd : shippedDesigns())
        names.push_back(sd.name);
    if (smoke && names.size() > 4)
        names.resize(4);

    size_t threads = std::max<size_t>(
        4, std::thread::hardware_concurrency());
    ExecContext ctx = ExecContext::withThreads(threads);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<SynthMetrics> flat =
        ctx.parallelMap(names.size(), [&](size_t i) {
            const ShippedDesign &sd = shippedDesign(names[i]);
            Design design = sd.load();
            ElabResult r = elaborate(design, sd.top);
            return synthesizeWithPasses(r.rtl);
        });
    benchmark::DoNotOptimize(flat);
    double flat_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    t0 = std::chrono::steady_clock::now();
    std::vector<BuiltDesign> built = buildDesigns(names, ctx);
    benchmark::DoNotOptimize(built);
    double graph_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    double speedup = graph_ms > 0.0 ? flat_ms / graph_ms : 0.0;
    obs::gauge("bench.graph.flat_ms").set(flat_ms);
    obs::gauge("bench.graph.graph_ms").set(graph_ms);
    obs::gauge("bench.graph.speedup").set(speedup);

    std::cout << "cold build (" << names.size() << " designs, "
              << threads << " threads): flat " << flat_ms
              << " ms, graph " << graph_ms << " ms, speedup "
              << speedup << "x\n";
}

/**
 * Disk-tier effectiveness: build a design set three times against a
 * scratch UCX_CACHE_DIR-style store — cold (fresh cache, fresh
 * store: every pass runs and writes through), disk-warm (a *new*
 * cache on the populated store, the second-process scenario: memory
 * empty, every artifact decodes from disk), then memory-warm (the
 * same cache again: pure memory hits). Wall times, the cold/disk
 * speedup, and the disk-hit count land in
 * BENCH_perf_microbench.json as bench.disk.* gauges. Runs even
 * under UCX_BENCH_SMOKE (on a design subset) so bench-smoke can
 * gate on the gauges' presence.
 */
void
diskSpeedup(bool smoke)
{
    namespace fs = std::filesystem;
    io::registerArtifactSerdes();

    std::vector<std::string> names;
    for (const ShippedDesign &sd : shippedDesigns())
        names.push_back(sd.name);
    if (smoke && names.size() > 4)
        names.resize(4);

    fs::path dir =
        fs::temp_directory_path() /
        ("ucx_bench_disk_" + std::to_string(::getpid()));
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);

    ExecContext ctx = ExecContext::serial();
    auto timedBuild = [&](ArtifactCache &cache) {
        auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(
            buildDesigns(names, ctx, &cache, {}));
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    ArtifactCache cold_cache(1024, true, dir.string());
    double cold_ms = timedBuild(cold_cache);

    // A second cache on the populated store stands in for a second
    // process: its memory tier starts empty.
    ArtifactCache warm_cache(1024, true, dir.string());
    double warm_ms = timedBuild(warm_cache);
    uint64_t disk_hits = warm_cache.stats().diskHits;

    double mem_warm_ms = timedBuild(warm_cache);

    double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    obs::gauge("bench.disk.cold_ms").set(cold_ms);
    obs::gauge("bench.disk.warm_ms").set(warm_ms);
    obs::gauge("bench.disk.mem_warm_ms").set(mem_warm_ms);
    obs::gauge("bench.disk.speedup").set(speedup);
    obs::gauge("bench.disk.hits")
        .set(static_cast<double>(disk_hits));

    std::cout << "disk tier (" << names.size()
              << " designs): cold " << cold_ms << " ms, disk-warm "
              << warm_ms << " ms (" << disk_hits
              << " disk hits), mem-warm " << mem_warm_ms
              << " ms, cold/disk speedup " << speedup << "x\n";

    fs::remove_all(dir, ec);
}

} // namespace

// Expanded BENCHMARK_MAIN() so the whole run sits inside a
// BenchReport and BENCH_perf_microbench.json captures the
// instrumentation counters alongside google-benchmark's own output.
int
main(int argc, char **argv)
{
    ucx::BenchHarness harness("perf_microbench");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // UCX_BENCH_SMOKE skips the multi-second custom workloads so CI
    // can exercise the report/diff machinery in seconds; the
    // google-benchmark suite above still runs (use
    // --benchmark_filter to trim it too).
    const char *smoke_env = std::getenv("UCX_BENCH_SMOKE");
    bool smoke = smoke_env && *smoke_env != '\0' &&
                 std::string(smoke_env) != "0";
    // graphSpeedup, diskSpeedup and fitSpeedup run either way (with
    // reduced work in smoke mode) so the smoke gate can assert the
    // bench.graph.*, bench.disk.* and bench.fit.* gauges exist.
    graphSpeedup(smoke);
    diskSpeedup(smoke);
    fitSpeedup(smoke);
    if (smoke)
        return 0;
    bootstrapSpeedup();
    cacheSpeedup();
    return 0;
}
