/**
 * @file
 * google-benchmark microbenchmarks of the library's hot paths:
 * likelihood evaluation, model fitting (analytic vs Laplace vs
 * AGHQ — the key design-choice ablation), parsing, elaboration, and
 * the synthesis pipeline.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "io/artifact_serde.hh"
#include "core/estimator.hh"
#include "data/paper_data.hh"
#include "designs/registry.hh"
#include "exec/context.hh"
#include "hdl/parser.hh"
#include "hdl/source_metrics.hh"
#include "nlme/bootstrap.hh"
#include "nlme/generic.hh"
#include "nlme/mixed_model.hh"
#include "nlme/pooled.hh"
#include "synth/elaborate.hh"
#include "synth/metrics.hh"
#include "synth/pass.hh"

namespace
{

using namespace ucx;

NlmeData
paperNlme()
{
    return paperDataset().toNlmeData(
        {Metric::Stmts, Metric::FanInLC});
}

void
BM_LogLikelihoodAnalytic(benchmark::State &state)
{
    MixedModel model(paperNlme());
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodAnalytic);

void
BM_LogLikelihoodLaplace(benchmark::State &state)
{
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Laplace;
    GenericNlme model(paperNlme(), logLinearMean(), cfg);
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodLaplace);

void
BM_LogLikelihoodAghq(benchmark::State &state)
{
    GenericNlmeConfig cfg;
    cfg.integration = Integration::Aghq;
    cfg.quadraturePoints = static_cast<size_t>(state.range(0));
    GenericNlme model(paperNlme(), logLinearMean(), cfg);
    std::vector<double> w = {0.002, 0.0003};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.logLikelihood(w, 0.45, 0.3));
    }
}
BENCHMARK(BM_LogLikelihoodAghq)->Arg(5)->Arg(15)->Arg(31);

void
BM_FitDee1Mixed(benchmark::State &state)
{
    const Dataset &data = paperDataset();
    for (auto _ : state)
        benchmark::DoNotOptimize(fitDee1(data));
}
BENCHMARK(BM_FitDee1Mixed)->Unit(benchmark::kMillisecond);

void
BM_FitDee1Pooled(benchmark::State &state)
{
    const Dataset &data = paperDataset();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fitDee1(data, FitMode::Pooled));
    }
}
BENCHMARK(BM_FitDee1Pooled)->Unit(benchmark::kMillisecond);

void
BM_ParsePipeline(benchmark::State &state)
{
    const ShippedDesign &sd = shippedDesign("pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(parseSource(sd.source));
}
BENCHMARK(BM_ParsePipeline)->Unit(benchmark::kMicrosecond);

void
BM_SourceMetricsPipeline(benchmark::State &state)
{
    const ShippedDesign &sd = shippedDesign("pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(measureSource(sd.source));
}
BENCHMARK(BM_SourceMetricsPipeline)->Unit(benchmark::kMicrosecond);

void
BM_ElaboratePipeline(benchmark::State &state)
{
    Design design = shippedDesign("pipeline").load();
    for (auto _ : state)
        benchmark::DoNotOptimize(elaborate(design, "pipeline"));
}
BENCHMARK(BM_ElaboratePipeline)->Unit(benchmark::kMillisecond);

void
BM_SynthesizePipeline(benchmark::State &state)
{
    Design design = shippedDesign("pipeline").load();
    ElabResult r = elaborate(design, "pipeline");
    for (auto _ : state)
        benchmark::DoNotOptimize(synthesize(r.rtl));
}
BENCHMARK(BM_SynthesizePipeline)->Unit(benchmark::kMillisecond);

void
BM_SynthesizeIssueQueue(benchmark::State &state)
{
    Design design = shippedDesign("issue_queue").load();
    ElabResult r = elaborate(design, "issue_queue");
    for (auto _ : state)
        benchmark::DoNotOptimize(synthesize(r.rtl));
}
BENCHMARK(BM_SynthesizeIssueQueue)->Unit(benchmark::kMillisecond);

void
BM_BuildAllShipped(benchmark::State &state)
{
    ExecContext ctx =
        ExecContext::withThreads(static_cast<size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(buildAll(ctx));
}
BENCHMARK(BM_BuildAllShipped)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/**
 * Headline parallel workload: a 200-replicate parametric bootstrap
 * of the DEE1 mixed-effects fit, timed serially and through a
 * >= 4-thread pool. The wall times, the speedup, and whether the two
 * runs produced identical replicate fits land in
 * BENCH_perf_microbench.json as gauges.
 */
void
bootstrapSpeedup()
{
    NlmeData nd = paperNlme();
    MixedModel model(nd);
    MixedFit fit = model.fit();

    BootstrapConfig bc;
    bc.replicates = 200;
    bc.starts = 1;

    auto run = [&](const ExecContext &ctx, double &wall_ms) {
        auto t0 = std::chrono::steady_clock::now();
        BootstrapResult r = parametricBootstrap(nd, fit, bc, ctx);
        wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
        return r;
    };

    double serial_ms = 0.0;
    double parallel_ms = 0.0;
    BootstrapResult serial = run(ExecContext::serial(), serial_ms);
    size_t threads = std::max<size_t>(
        4, std::thread::hardware_concurrency());
    BootstrapResult parallel =
        run(ExecContext::withThreads(threads), parallel_ms);

    bool identical = serial.fits.size() == parallel.fits.size();
    for (size_t i = 0; identical && i < serial.fits.size(); ++i) {
        identical = serial.fits[i].sigmaEps ==
                        parallel.fits[i].sigmaEps &&
                    serial.fits[i].sigmaRho ==
                        parallel.fits[i].sigmaRho &&
                    serial.fits[i].weights == parallel.fits[i].weights;
    }

    obs::gauge("bench.bootstrap200.serial_ms").set(serial_ms);
    obs::gauge("bench.bootstrap200.parallel_ms").set(parallel_ms);
    obs::gauge("bench.bootstrap200.threads")
        .set(static_cast<double>(threads));
    obs::gauge("bench.bootstrap200.speedup")
        .set(parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    obs::gauge("bench.bootstrap200.identical")
        .set(identical ? 1.0 : 0.0);

    std::cout << "bootstrap(200 replicates): serial " << serial_ms
              << " ms, " << threads << " threads " << parallel_ms
              << " ms, speedup "
              << (parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0)
              << "x, results "
              << (identical ? "identical" : "DIFFERENT") << "\n";
}

/**
 * Artifact-cache effectiveness: build every shipped design twice
 * through one session — cold (every elaboration and synthesis pass
 * runs) then warm (every artifact is a cache hit) — and record the
 * wall times, the speedup, and the session hit rate as gauges in
 * BENCH_perf_microbench.json. With UCX_CACHE=0 both runs are cold
 * and the speedup hovers around 1.
 */
void
cacheSpeedup()
{
    EstimationSession session(SessionConfig::fromEnv(),
                              ExecContext::serial());

    auto run = [&] {
        auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(session.buildShipped());
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    double cold_ms = run();
    double warm_ms = run();
    double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    ArtifactCache::Stats stats = session.cache().stats();

    obs::gauge("bench.cache.cold_ms").set(cold_ms);
    obs::gauge("bench.cache.warm_ms").set(warm_ms);
    obs::gauge("bench.cache.speedup").set(speedup);
    obs::gauge("bench.cache.hit_rate").set(stats.hitRate());

    std::cout << "buildShipped: cold " << cold_ms << " ms, warm "
              << warm_ms << " ms, speedup " << speedup
              << "x, hit rate " << stats.hitRate() << " ("
              << (session.cache().enabled() ? "cache on"
                                            : "cache off")
              << ")\n";
}

/**
 * Scheduler shape comparison: build several shipped designs cold
 * (uncached) through the old flat fork-join shape — one task per
 * design, each running its whole elaborate-then-pass pipeline
 * sequentially — and through the per-pass dependency graph
 * (buildDesigns), where independent passes of different designs
 * interleave across the pool. Both run on the same >= 4-thread
 * pool; the wall times and speedup land in
 * BENCH_perf_microbench.json as bench.graph.* gauges. Runs even
 * under UCX_BENCH_SMOKE (on a design subset) so bench-smoke can
 * gate on the gauges' presence.
 */
void
graphSpeedup(bool smoke)
{
    std::vector<std::string> names;
    for (const ShippedDesign &sd : shippedDesigns())
        names.push_back(sd.name);
    if (smoke && names.size() > 4)
        names.resize(4);

    size_t threads = std::max<size_t>(
        4, std::thread::hardware_concurrency());
    ExecContext ctx = ExecContext::withThreads(threads);

    auto t0 = std::chrono::steady_clock::now();
    std::vector<SynthMetrics> flat =
        ctx.parallelMap(names.size(), [&](size_t i) {
            const ShippedDesign &sd = shippedDesign(names[i]);
            Design design = sd.load();
            ElabResult r = elaborate(design, sd.top);
            return synthesizeWithPasses(r.rtl);
        });
    benchmark::DoNotOptimize(flat);
    double flat_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();

    t0 = std::chrono::steady_clock::now();
    std::vector<BuiltDesign> built = buildDesigns(names, ctx);
    benchmark::DoNotOptimize(built);
    double graph_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    double speedup = graph_ms > 0.0 ? flat_ms / graph_ms : 0.0;
    obs::gauge("bench.graph.flat_ms").set(flat_ms);
    obs::gauge("bench.graph.graph_ms").set(graph_ms);
    obs::gauge("bench.graph.speedup").set(speedup);

    std::cout << "cold build (" << names.size() << " designs, "
              << threads << " threads): flat " << flat_ms
              << " ms, graph " << graph_ms << " ms, speedup "
              << speedup << "x\n";
}

/**
 * Disk-tier effectiveness: build a design set three times against a
 * scratch UCX_CACHE_DIR-style store — cold (fresh cache, fresh
 * store: every pass runs and writes through), disk-warm (a *new*
 * cache on the populated store, the second-process scenario: memory
 * empty, every artifact decodes from disk), then memory-warm (the
 * same cache again: pure memory hits). Wall times, the cold/disk
 * speedup, and the disk-hit count land in
 * BENCH_perf_microbench.json as bench.disk.* gauges. Runs even
 * under UCX_BENCH_SMOKE (on a design subset) so bench-smoke can
 * gate on the gauges' presence.
 */
void
diskSpeedup(bool smoke)
{
    namespace fs = std::filesystem;
    io::registerArtifactSerdes();

    std::vector<std::string> names;
    for (const ShippedDesign &sd : shippedDesigns())
        names.push_back(sd.name);
    if (smoke && names.size() > 4)
        names.resize(4);

    fs::path dir =
        fs::temp_directory_path() /
        ("ucx_bench_disk_" + std::to_string(::getpid()));
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);

    ExecContext ctx = ExecContext::serial();
    auto timedBuild = [&](ArtifactCache &cache) {
        auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(
            buildDesigns(names, ctx, &cache, {}));
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    ArtifactCache cold_cache(1024, true, dir.string());
    double cold_ms = timedBuild(cold_cache);

    // A second cache on the populated store stands in for a second
    // process: its memory tier starts empty.
    ArtifactCache warm_cache(1024, true, dir.string());
    double warm_ms = timedBuild(warm_cache);
    uint64_t disk_hits = warm_cache.stats().diskHits;

    double mem_warm_ms = timedBuild(warm_cache);

    double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
    obs::gauge("bench.disk.cold_ms").set(cold_ms);
    obs::gauge("bench.disk.warm_ms").set(warm_ms);
    obs::gauge("bench.disk.mem_warm_ms").set(mem_warm_ms);
    obs::gauge("bench.disk.speedup").set(speedup);
    obs::gauge("bench.disk.hits")
        .set(static_cast<double>(disk_hits));

    std::cout << "disk tier (" << names.size()
              << " designs): cold " << cold_ms << " ms, disk-warm "
              << warm_ms << " ms (" << disk_hits
              << " disk hits), mem-warm " << mem_warm_ms
              << " ms, cold/disk speedup " << speedup << "x\n";

    fs::remove_all(dir, ec);
}

} // namespace

// Expanded BENCHMARK_MAIN() so the whole run sits inside a
// BenchReport and BENCH_perf_microbench.json captures the
// instrumentation counters alongside google-benchmark's own output.
int
main(int argc, char **argv)
{
    ucx::BenchHarness harness("perf_microbench");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // UCX_BENCH_SMOKE skips the multi-second custom workloads so CI
    // can exercise the report/diff machinery in seconds; the
    // google-benchmark suite above still runs (use
    // --benchmark_filter to trim it too).
    const char *smoke_env = std::getenv("UCX_BENCH_SMOKE");
    bool smoke = smoke_env && *smoke_env != '\0' &&
                 std::string(smoke_env) != "0";
    // graphSpeedup and diskSpeedup run either way (on a subset in
    // smoke mode) so the smoke gate can assert the bench.graph.*
    // and bench.disk.* gauges exist.
    graphSpeedup(smoke);
    diskSpeedup(smoke);
    if (smoke)
        return 0;
    bootstrapSpeedup();
    cacheSpeedup();
    return 0;
}
