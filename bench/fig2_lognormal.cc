/**
 * @file
 * Reproduces paper Figure 2: a lognormal distribution with mu = 0,
 * showing mode < median < mean. Prints the density series P(rho)
 * over rho in [0, 2.5] plus the three landmarks.
 */

#include <iostream>

#include "bench_util.hh"
#include "stats/lognormal.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("fig2_lognormal");
    banner("Figure 2",
           "Lognormal distribution with mu = 0 (the productivity / "
           "error law).");

    // The figure's annotations (mode 0.75, mean 1.16) correspond to
    // sigma ~= 0.54.
    const double sigma = 0.54;
    Lognormal d(0.0, sigma);

    Table t({"rho", "P(rho)", ""});
    t.setAlign(2, Align::Left);
    for (double x = 0.1; x <= 2.51; x += 0.1) {
        double p = d.pdf(x);
        int bar = static_cast<int>(p * 45.0);
        t.addRow({fmtFixed(x, 1), fmtFixed(p, 3),
                  std::string(static_cast<size_t>(bar), '#')});
    }
    std::cout << t.render() << "\n";

    Table marks({"Landmark", "Value", "Paper annotation"});
    marks.addRow({"mode", fmtFixed(d.mode(), 3), "0.75"});
    marks.addRow({"median", fmtFixed(d.median(), 3), "1.00"});
    marks.addRow({"mean", fmtFixed(d.mean(), 3), "1.16"});
    std::cout << marks.render() << "\n";
    std::cout << "Setting mu = 0 makes the median exactly 1: half "
                 "of all projects have\nrho > 1 and half rho < 1 "
                 "(Section 3.1).\n";
    return 0;
}
