/**
 * @file
 * Reproduces paper Table 4 — the headline result: accuracy
 * (sigma_eps) of every design-effort estimator, fitted with the
 * nonlinear mixed-effects model, plus the rho_i = 1 ablation row,
 * and the DEE1 analysis of Section 5.1.1 (AIC/BIC, pair search).
 */

#include <iostream>

#include "bench_util.hh"
#include "core/search.hh"
#include "data/paper_data.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("table4_accuracy");
    banner("Table 4",
           "Accuracy of various design effort estimators "
           "(sigma_eps; lower is better).");

    // UCX_THREADS controls the session pool; every number below is
    // byte-identical at any thread count, cache on or off.
    EstimationSession &session = bench.session();
    const Dataset &data = session.accountedDataset();

    // ------------------------------------------------------ body
    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());
    Table body({"Module", "Effort", "DEE1", "Stmts", "LoC",
                "FanInLC", "Nets", "Freq", "AreaL", "PowerD",
                "PowerS", "AreaS", "Cells", "FFs"});
    for (const Component &c : data.components()) {
        std::vector<std::string> row = {c.fullName(),
                                        fmtCompact(c.effort, 2)};
        double est = dee1.predictMedian(
            c.metrics, dee1.productivity(c.project));
        row.push_back(fmtFixed(est, 1));
        for (Metric m : allMetrics()) {
            row.push_back(fmtCompact(
                c.metrics[static_cast<size_t>(m)], 1));
        }
        body.addRow(row);
    }
    std::cout << body.render() << "\n";

    // -------------------------------------------------- sigma rows
    std::cout << "Estimator accuracy, refit with this library's "
                 "NLME implementation:\n\n";
    Table sig({"Estimator", "sigma_eps (mixed)", "paper",
               "sigma_eps (rho=1)", "paper ", "90% CI (mixed)"});
    sig.setAlign(5, Align::Left);
    {
        FittedEstimator pooled_dee1 =
            session.fit(EstimatorSpec::dee1(FitMode::Pooled));
        auto [lo, hi] = dee1.confidenceInterval(1.0, 0.90);
        sig.addRow({"DEE1", fmtFixed(dee1.sigmaEps(), 2),
                    fmtFixed(paperDee1Reference().sigmaMixed, 2),
                    fmtFixed(pooled_dee1.sigmaEps(), 2),
                    fmtFixed(paperDee1Reference().sigmaPooled, 2),
                    "(" + fmtFixed(lo, 2) + ", " + fmtFixed(hi, 2) +
                        ")"});
        sig.addRule();
    }
    for (const PaperSigma &ref : paperSigmas()) {
        FittedEstimator mixed =
            session.fit(EstimatorSpec::single(ref.metric));
        FittedEstimator pooled = session.fit(
            EstimatorSpec::single(ref.metric, FitMode::Pooled));
        auto [lo, hi] = mixed.confidenceInterval(1.0, 0.90);
        sig.addRow({metricName(ref.metric),
                    fmtFixed(mixed.sigmaEps(), 2),
                    fmtFixed(ref.sigmaMixed, 2),
                    fmtFixed(pooled.sigmaEps(), 2),
                    fmtFixed(ref.sigmaPooled, 2),
                    "(" + fmtFixed(lo, 2) + ", " + fmtFixed(hi, 2) +
                        ")"});
    }
    std::cout << sig.render() << "\n";

    // ------------------------------------------- DEE1 diagnostics
    std::cout << "Section 5.1.1 - DEE1 vs Stmts information "
                 "criteria:\n\n";
    FittedEstimator stmts =
        session.fit(EstimatorSpec::single(Metric::Stmts));
    Table ic({"Model", "AIC", "paper AIC", "BIC", "paper BIC"});
    ic.addRow({"DEE1 (Stmts + FanInLC)", fmtFixed(dee1.aic(), 1),
               fmtFixed(paperDee1Reference().aicDee1, 1),
               fmtFixed(dee1.bic(), 1),
               fmtFixed(paperDee1Reference().bicDee1, 1)});
    ic.addRow({"Stmts", fmtFixed(stmts.aic(), 1),
               fmtFixed(paperDee1Reference().aicStmts, 1),
               fmtFixed(stmts.bic(), 1),
               fmtFixed(paperDee1Reference().bicStmts, 1)});
    std::cout << ic.render() << "\n";

    std::cout << "Fitted DEE1 weights: w_Stmts = "
              << fmtCompact(dee1.weights()[0], 6)
              << ", w_FanInLC = "
              << fmtCompact(dee1.weights()[1], 6) << "\n";
    std::cout << "Fitted productivities (rho_i, median team = 1):\n";
    for (const auto &[team, rho] : dee1.productivities())
        std::cout << "  " << team << ": " << fmtFixed(rho, 2)
                  << "\n";
    std::cout << "\n";

    // ------------------------------------------------ pair search
    std::cout << "Two-metric estimator search (top 5 of 55 pairs, "
                 "by sigma_eps):\n\n";
    auto pairs =
        rankMetricPairs(data, FitMode::MixedEffects, session.exec());
    Table top({"Rank", "Pair", "sigma_eps", "AIC", "BIC"});
    top.setAlign(1, Align::Left);
    for (size_t i = 0; i < 5 && i < pairs.size(); ++i) {
        const auto &entry = pairs[i];
        top.addRow({std::to_string(i + 1),
                    metricName(entry.metrics[0]) + " + " +
                        metricName(entry.metrics[1]),
                    fmtFixed(entry.fit.sigmaEps(), 3),
                    fmtFixed(entry.fit.aic(), 1),
                    fmtFixed(entry.fit.bic(), 1)});
    }
    std::cout << top.render() << "\n";

    auto rank_of = [&](Metric a, Metric b) {
        for (size_t i = 0; i < pairs.size(); ++i) {
            bool hit = (pairs[i].metrics[0] == a &&
                        pairs[i].metrics[1] == b) ||
                       (pairs[i].metrics[0] == b &&
                        pairs[i].metrics[1] == a);
            if (hit)
                return i + 1;
        }
        return pairs.size();
    };
    std::cout << "Stmts + FanInLC (= DEE1) ranks #"
              << rank_of(Metric::Stmts, Metric::FanInLC)
              << " of 55; Stmts + Nets ranks #"
              << rank_of(Metric::Stmts, Metric::Nets) << ".\n";
    std::cout
        << "Paper: Stmts+Nets and Stmts+FanInLC tied at the top; "
           "the authors chose\nStmts+FanInLC as DEE1 because its "
           "constituents are individually stronger.\nOur exhaustive "
           "search finds a few pairs with lower sigma_eps on this "
           "18-point\nsample (e.g. Stmts+PowerD); with so few data "
           "points such pairs are likely\noverfit, exactly the "
           "paper's argument for preferring individually strong\n"
           "constituents.\n";
    return 0;
}
