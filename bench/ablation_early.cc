/**
 * @file
 * Extension experiment for paper Section 7 ("estimators that can be
 * obtained even earlier ... derived from a higher-level description
 * of the design"): calibrate per-metric power laws on small
 * configurations of parameterized components, extrapolate the
 * synthesis metrics of configurations never elaborated, and compare
 * against ground truth.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "core/early.hh"
#include "core/estimator.hh"
#include "data/paper_data.hh"
#include "designs/registry.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("ablation_early");
    banner("Extension: early estimation",
           "Power-law extrapolation of synthesis metrics from small "
           "configurations.");

    EstimationSession &session = bench.session();

    struct Study
    {
        const char *design;
        const char *param;
        std::vector<int64_t> calibrate;
        int64_t target;
    };
    const Study studies[] = {
        {"exec_cluster", "LANES", {1, 2, 3}, 8},
        {"mmu_lite", "ENTRIES", {2, 4, 8}, 32},
        {"issue_queue", "ENTRIES", {2, 4, 8}, 24},
        {"memctrl", "BANKS", {1, 2, 4}, 8},
    };

    FittedEstimator dee1 = session.fit(EstimatorSpec::dee1());

    Table t({"Design", "param", "target", "metric", "predicted",
             "actual", "error"});
    Table laws({"Design", "param", "Cells exponent",
                "FanInLC exponent", "fit rms (log)"});
    for (const Study &s : studies) {
        const ShippedDesign &sd = shippedDesign(s.design);
        Design design = sd.load();
        EarlyEstimator early =
            session.earlyEstimator(design, sd.top, s.param);
        early.calibrate(s.calibrate);

        MetricValues predicted = early.predictMetrics(s.target);
        MetricValues actual = early.measureActual(s.target);
        for (Metric m :
             {Metric::Cells, Metric::FanInLC, Metric::AreaL}) {
            double p = predicted[static_cast<size_t>(m)];
            double a = actual[static_cast<size_t>(m)];
            if (a <= 0.0)
                continue;
            double err = 100.0 * (p - a) / a;
            t.addRow({sd.name,
                      std::string(s.param) + "=" +
                          std::to_string(s.target),
                      std::to_string(s.target), metricName(m),
                      fmtCompact(p, 0), fmtCompact(a, 0),
                      fmtFixed(err, 1) + "%"});
        }
        laws.addRow({sd.name, s.param,
                     fmtFixed(early.law(Metric::Cells).beta, 2),
                     fmtFixed(early.law(Metric::FanInLC).beta, 2),
                     fmtFixed(early.law(Metric::Cells).rmsLog, 3)});
    }
    std::cout << t.render() << "\n";
    std::cout << "Fitted scaling exponents (metric ~ param^beta):\n\n"
              << laws.render() << "\n";

    // Close the loop: early effort estimate for the unbuilt
    // 8-lane cluster.
    {
        const ShippedDesign &sd = shippedDesign("exec_cluster");
        Design design = sd.load();
        EarlyEstimator early =
            session.earlyEstimator(design, sd.top, "LANES");
        early.calibrate({1, 2, 3});
        MetricValues m = early.predictMetrics(8);
        double effort = dee1.predictMedian(m);
        auto [lo, hi] = dee1.confidenceInterval(effort, 0.90);
        std::cout
            << "Early effort estimate for an unbuilt 8-lane "
               "exec_cluster: "
            << fmtFixed(effort, 2) << " PM, 90% CI ["
            << fmtFixed(lo, 2) << ", " << fmtFixed(hi, 2)
            << "]\n(predicted before ever elaborating the 8-lane "
               "configuration).\n";
    }
    return 0;
}
