/**
 * @file
 * Extension experiment: how certain are the paper's sigma_eps
 * comparisons with only 18 data points? Profile-likelihood intervals
 * and a parametric bootstrap for the key estimators.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/estimator.hh"
#include "data/paper_data.hh"
#include "exec/context.hh"
#include "nlme/bootstrap.hh"
#include "nlme/mixed_model.hh"
#include "nlme/profile.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("ablation_uncertainty");
    banner("Extension: uncertainty of sigma_eps",
           "Profile-likelihood and bootstrap intervals on the "
           "published dataset.");

    EstimationSession &session = bench.session();
    const Dataset &data = session.accountedDataset();
    // UCX_THREADS controls the session pool; the intervals below
    // are byte-identical at any thread count.
    const ExecContext &ctx = session.exec();

    Table t({"Estimator", "sigma_eps", "95% profile CI",
             "90% bootstrap CI"});
    t.setAlign(2, Align::Left);
    t.setAlign(3, Align::Left);

    struct Entry
    {
        const char *name;
        std::vector<Metric> metrics;
    };
    const Entry entries[] = {
        {"DEE1", {Metric::Stmts, Metric::FanInLC}},
        {"Stmts", {Metric::Stmts}},
        {"Nets", {Metric::Nets}},
        {"Cells", {Metric::Cells}},
    };

    for (const Entry &e : entries) {
        NlmeData nd = data.toNlmeData(e.metrics);
        MixedModel model(nd);
        MixedFit fit = model.fit(ctx);

        ProfileConfig pc;
        pc.starts = 2;
        ProfileInterval ci = profileInterval(
            model, fit, MixedParam::SigmaEps, 0, pc, ctx);

        BootstrapConfig bc;
        bc.replicates = 120;
        bc.starts = 1;
        BootstrapResult boot = parametricBootstrap(nd, fit, bc, ctx);
        auto [blo, bhi] = boot.sigmaEpsInterval(0.90);

        t.addRow({e.name, fmtFixed(fit.sigmaEps, 2),
                  "(" + fmtFixed(ci.lower, 2) + ", " +
                      fmtFixed(ci.upper, 2) + ")",
                  "(" + fmtFixed(blo, 2) + ", " + fmtFixed(bhi, 2) +
                      ")"});
    }
    std::cout << t.render() << "\n";

    std::cout
        << "Reading: with 18 components the sigma of a *good* "
           "estimator is known to\nroughly +-35%, so DEE1 (0.46) vs "
           "Stmts (0.50) vs FanInLC (0.55) are\nstatistically close "
           "— the paper's own caveat that \"within the margin of\n"
           "error ... any one of Stmts, LoC, or FanInLC has the "
           "same accuracy\" — while\nthe good-vs-bad split (0.5 vs "
           "2.1) is decisive.\n";
    return 0;
}
