/**
 * @file
 * Extension experiment: out-of-sample validation of the Table 4
 * conclusions. The paper ranks estimators by in-sample sigma_eps;
 * here each estimator also gets leave-one-component-out and
 * leave-one-project-out (cold-start, rho = 1) hold-out errors on
 * the same published dataset. If the paper's ranking were an
 * overfitting artifact, it would not survive this.
 */

#include <iostream>

#include "bench_util.hh"
#include "core/validation.hh"
#include "data/paper_data.hh"
#include "exec/context.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("ablation_crossval");
    banner("Extension: cross-validation",
           "Out-of-sample error of the Table 4 estimators "
           "(rms log error; comparable to sigma_eps).");

    EstimationSession &session = bench.session();
    const Dataset &data = session.accountedDataset();
    // UCX_THREADS controls the session pool; the fold errors below
    // are byte-identical at any thread count.
    const ExecContext &ctx = session.exec();

    Table t({"Estimator", "in-sample sigma", "LOO component",
             "LOO project (rho=1)", "within 2x (LOO comp)"});
    auto add = [&](const std::string &name,
                   const std::vector<Metric> &metrics) {
        EstimatorSpec spec;
        spec.metrics = metrics;
        FittedEstimator fit = session.fit(spec);
        auto loco = leaveOneComponentOut(data, metrics,
                                         FitMode::MixedEffects, ctx);
        auto lopo = leaveOneProjectOut(data, metrics,
                                       FitMode::MixedEffects, ctx);
        t.addRow({name, fmtFixed(fit.sigmaEps(), 2),
                  fmtFixed(loco.rmsLogError(), 2),
                  fmtFixed(lopo.rmsLogError(), 2),
                  fmtFixed(100.0 * loco.withinFactorTwo(), 0) +
                      "%"});
    };
    add("DEE1", {Metric::Stmts, Metric::FanInLC});
    for (Metric m : allMetrics())
        add(metricName(m), {m});
    std::cout << t.render() << "\n";

    std::cout
        << "Reading: the good/bad split of Table 4 survives "
           "hold-out validation; the\ncold-start column shows the "
           "extra error a team pays before any of its own\n"
           "components are calibrated (the Section 3.1.1 "
           "motivation for tracking rho).\n\n";

    // Per-component detail for DEE1.
    auto cv = leaveOneComponentOut(
        data, {Metric::Stmts, Metric::FanInLC},
        FitMode::MixedEffects, ctx);
    Table detail({"Held-out component", "actual", "predicted",
                  "ratio"});
    for (const auto &r : cv.records) {
        detail.addRow({r.component, fmtCompact(r.actual, 2),
                       fmtFixed(r.predicted, 1),
                       fmtFixed(r.actual / r.predicted, 2)});
    }
    std::cout << "DEE1 leave-one-component-out detail:\n\n"
              << detail.render();
    return 0;
}
