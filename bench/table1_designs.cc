/**
 * @file
 * Reproduces paper Table 1: characteristics of the processor designs
 * used in the evaluation, plus the synthetic µHDL components this
 * library ships to exercise the same measurement pipeline.
 */

#include <iostream>

#include "bench_util.hh"
#include "data/paper_data.hh"
#include "designs/registry.hh"
#include "hdl/source_metrics.hh"
#include "util/table.hh"

using namespace ucx;

int
main()
{
    BenchHarness bench("table1_designs");
    banner("Table 1",
           "Characteristics of the processor designs used in the "
           "evaluation.");

    Table t({"Characteristic", "Leon3", "PUMA", "IVM"});
    const auto &rows = paperTable1();
    auto col = [&](auto get) {
        return std::vector<std::string>{get(rows[0]), get(rows[1]),
                                        get(rows[2])};
    };
    auto add_row = [&](const std::string &name, auto get) {
        auto v = col(get);
        t.addRow({name, v[0], v[1], v[2]});
    };
    add_row("ISA",
            [](const ProcessorCharacteristics &p) { return p.isa; });
    add_row("Execution", [](const ProcessorCharacteristics &p) {
        return p.execution;
    });
    add_row("Pipeline stages", [](const ProcessorCharacteristics &p) {
        return std::to_string(p.pipelineStages);
    });
    add_row("FE, IS width", [](const ProcessorCharacteristics &p) {
        return p.fetchIssueWidth;
    });
    add_row("DI, RE width", [](const ProcessorCharacteristics &p) {
        return p.dispatchRetireWidth;
    });
    add_row("Branch predictor",
            [](const ProcessorCharacteristics &p) {
                return p.branchPredictor;
            });
    add_row("Caches", [](const ProcessorCharacteristics &p) {
        return p.caches;
    });
    add_row("Multiproc. support",
            [](const ProcessorCharacteristics &p) {
                return p.multiprocessorSupport ? std::string("Yes")
                                               : std::string("No");
            });
    add_row("HDL Language", [](const ProcessorCharacteristics &p) {
        return p.hdlLanguage;
    });
    std::cout << t.render() << "\n";

    std::cout << "Synthetic uHDL components shipped with this "
                 "reproduction (substitute\nfor the proprietary "
                 "sources; measured by the same pipeline):\n\n";
    // Parse + elaborate + synthesize every shipped design; the
    // per-design flows run through the session's UCX_THREADS pool
    // and artifact cache, and the numbers are identical at any
    // thread count, cached or not.
    std::vector<BuiltDesign> built = bench.session().buildShipped();
    Table s({"Component", "Top module", "LoC", "Nets", "Cells",
             "FFs", "Description"});
    for (size_t i = 0; i < built.size(); ++i) {
        const ShippedDesign &sd = shippedDesigns()[i];
        const BuiltDesign &b = built[i];
        size_t loc = countLoc(sd.source);
        s.addRow({b.name, sd.top, std::to_string(loc),
                  std::to_string(b.metrics.nets),
                  std::to_string(b.metrics.cells),
                  std::to_string(b.metrics.ffs), sd.description});
    }
    s.setAlign(6, Align::Left);
    std::cout << s.render();
    return 0;
}
